//! Wire messages and the byte-level cost model.
//!
//! The paper's efficiency argument (§III-A) is entirely about how many
//! samples cross the network, so every message type reports a
//! [`Message::wire_size`] and whether it can piggyback on a routine
//! heartbeat: *"a node could pack the samples into an ordinary heartbeat
//! message to the broker, and no more communication cost is incurred"*.
//! We adopt the paper's threshold of **16 samples** per batch
//! ([`HEARTBEAT_FREE_SAMPLES`]).

/// Identifier of a sensor node.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize,
)]
pub struct NodeId(pub u32);

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "node-{}", self.0)
    }
}

/// Maximum number of samples that fit into a routine heartbeat message
/// without incurring extra communication cost (§III-A).
pub const HEARTBEAT_FREE_SAMPLES: usize = 16;

/// Fixed per-message header size in bytes (ids, lengths, checksums).
pub const MESSAGE_HEADER_BYTES: usize = 16;

/// Wire size of one sample entry: an 8-byte value plus a 4-byte rank.
pub const SAMPLE_ENTRY_BYTES: usize = 12;

/// One sampled element: its value and its **local rank** (1-based position
/// in the node's sorted data), the extra information the RankCounting
/// estimator exploits.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SampleEntry {
    /// The sampled data value.
    pub value: f64,
    /// 1-based rank of the value within the node's sorted local data.
    pub rank: u32,
}

/// A batch of samples shipped from a node to the base station.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SampleMessage {
    /// The reporting node.
    pub node_id: NodeId,
    /// Size `n_i` of the node's full local dataset.
    pub population_size: usize,
    /// Cumulative sampling probability the node has reached after this batch.
    pub probability: f64,
    /// Newly sampled entries, sorted by rank.
    pub entries: Vec<SampleEntry>,
}

impl SampleMessage {
    /// True when the batch is small enough to piggyback on a heartbeat.
    pub fn fits_in_heartbeat(&self) -> bool {
        self.entries.len() <= HEARTBEAT_FREE_SAMPLES
    }
}

/// Every message that crosses the simulated network.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
#[non_exhaustive]
pub enum Message {
    /// Samples from a node to the base station.
    Sample(SampleMessage),
    /// Base-station instruction to raise a node's sampling probability.
    TopUpRequest {
        /// Target node.
        node_id: NodeId,
        /// Cumulative sampling probability the node should reach.
        target_probability: f64,
    },
    /// A routine keep-alive with no payload.
    Heartbeat {
        /// Sender.
        node_id: NodeId,
    },
}

impl Message {
    /// The sender or addressee of the message.
    pub fn node_id(&self) -> NodeId {
        match self {
            Message::Sample(m) => m.node_id,
            Message::TopUpRequest { node_id, .. } => *node_id,
            Message::Heartbeat { node_id } => *node_id,
        }
    }

    /// Serialized size in bytes under the fixed cost model.
    pub fn wire_size(&self) -> usize {
        match self {
            Message::Sample(m) => MESSAGE_HEADER_BYTES + m.entries.len() * SAMPLE_ENTRY_BYTES,
            Message::TopUpRequest { .. } => MESSAGE_HEADER_BYTES + 8,
            Message::Heartbeat { .. } => MESSAGE_HEADER_BYTES,
        }
    }

    /// True when the message incurs no extra cost beyond routine traffic
    /// (heartbeats, and sample batches small enough to ride one).
    pub fn is_free(&self) -> bool {
        match self {
            Message::Sample(m) => m.fits_in_heartbeat(),
            Message::TopUpRequest { .. } => false,
            Message::Heartbeat { .. } => true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_msg(n: usize) -> SampleMessage {
        SampleMessage {
            node_id: NodeId(3),
            population_size: 100,
            probability: 0.25,
            entries: (0..n)
                .map(|i| SampleEntry {
                    value: i as f64,
                    rank: i as u32 + 1,
                })
                .collect(),
        }
    }

    #[test]
    fn wire_size_scales_with_entries() {
        let m = Message::Sample(sample_msg(0));
        assert_eq!(m.wire_size(), MESSAGE_HEADER_BYTES);
        let m = Message::Sample(sample_msg(10));
        assert_eq!(
            m.wire_size(),
            MESSAGE_HEADER_BYTES + 10 * SAMPLE_ENTRY_BYTES
        );
    }

    #[test]
    fn heartbeat_piggyback_threshold() {
        assert!(Message::Sample(sample_msg(HEARTBEAT_FREE_SAMPLES)).is_free());
        assert!(!Message::Sample(sample_msg(HEARTBEAT_FREE_SAMPLES + 1)).is_free());
        assert!(Message::Heartbeat { node_id: NodeId(0) }.is_free());
        assert!(!Message::TopUpRequest {
            node_id: NodeId(0),
            target_probability: 0.5
        }
        .is_free());
    }

    #[test]
    fn node_id_accessor_covers_variants() {
        assert_eq!(Message::Sample(sample_msg(1)).node_id(), NodeId(3));
        assert_eq!(
            Message::TopUpRequest {
                node_id: NodeId(7),
                target_probability: 0.1
            }
            .node_id(),
            NodeId(7)
        );
        assert_eq!(
            Message::Heartbeat { node_id: NodeId(9) }.node_id(),
            NodeId(9)
        );
    }

    #[test]
    fn node_id_displays() {
        assert_eq!(NodeId(5).to_string(), "node-5");
    }
}
