//! Failure injection: node dropout and message loss.
//!
//! Real IoT deployments lose nodes and drop radio frames. A
//! [`FailurePlan`] injects both into the simulated network so the
//! estimator's degradation can be measured (see the
//! `distributed_network` example and the integration tests):
//!
//! * **node dropout** — a node dies before reporting; the base station
//!   simply never hears from it, so the global estimate misses that
//!   node's contribution entirely;
//! * **message loss** — individual sample batches are lost with some
//!   probability. Under [`LossMode::Retransmit`] the sender repeats until
//!   delivery (extra cost, unchanged accuracy); under [`LossMode::Drop`]
//!   the batch is silently gone (the node believes it shipped, so the
//!   station's sample under-represents the node and its per-node
//!   estimate drifts toward the whole-population fallback).
//!
//! # Determinism across drivers
//!
//! Every random decision is keyed by `(seed, NodeId)`, not by the order
//! in which the plan is consulted: each node owns an independent dropout
//! draw and an independent loss stream, both derived from the plan seed
//! and the node id by a SplitMix64-style mix. The *m*-th transmission
//! decision for node *i* is therefore a pure function of
//! `(seed, i, m)` — a threaded driver interleaving nodes arbitrarily,
//! a flat driver iterating in id order, and a tree driver skipping
//! cut-off subtrees all see identical failures for the nodes they
//! actually ask about. The conformance kit
//! ([`crate::conformance`]) relies on this to compare drivers
//! byte-for-byte under one shared plan.

use std::collections::BTreeMap;
use std::collections::BTreeSet;

// prc-lint: allow(B003, reason = "seeded failure-injection randomness; not privacy noise")
use rand::{rngs::StdRng, RngExt, SeedableRng};

use crate::message::NodeId;

/// What happens to a lost message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum LossMode {
    /// The sender retransmits until the message is delivered; loss costs
    /// extra transmissions but never data.
    Retransmit,
    /// The message is silently dropped; the receiver never sees it.
    Drop,
}

/// Domain-separation salt for the per-node dropout draw.
const DROPOUT_SALT: u64 = 0x5bd1_e995_9e37_79b9;
/// Domain-separation salt for the per-node loss stream.
const LOSS_SALT: u64 = 0x2545_f491_4f6c_dd1d;

/// Mixes the plan seed and a node id into an independent stream seed.
fn stream_seed(seed: u64, node_id: NodeId, salt: u64) -> u64 {
    let mut z = seed ^ salt ^ u64::from(node_id.0).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A deterministic, seeded failure schedule with per-node randomness.
#[derive(Debug, Clone)]
pub struct FailurePlan {
    dropout_probability: f64,
    dead_nodes: BTreeSet<NodeId>,
    decided: BTreeMap<NodeId, bool>,
    message_loss_probability: f64,
    loss_mode: LossMode,
    seed: u64,
    loss_streams: BTreeMap<NodeId, StdRng>,
}

impl FailurePlan {
    /// A plan with no failures.
    pub fn none() -> Self {
        FailurePlan::new(0.0, 0.0, LossMode::Retransmit, 0)
    }

    /// Creates a plan.
    ///
    /// * `dropout_probability` — chance that each node is dead for the
    ///   whole simulation (an independent draw per node);
    /// * `message_loss_probability` — chance that each message
    ///   transmission attempt is lost;
    /// * `loss_mode` — what happens on loss;
    /// * `seed` — RNG seed; every decision is a pure function of the
    ///   seed, the node id, and that node's decision ordinal, so the
    ///   plan is deterministic regardless of the order in which drivers
    ///   consult it.
    ///
    /// # Panics
    ///
    /// Panics unless both probabilities are in `[0, 1)` (a plan that loses
    /// everything forever would deadlock retransmission).
    pub fn new(
        dropout_probability: f64,
        message_loss_probability: f64,
        loss_mode: LossMode,
        seed: u64,
    ) -> Self {
        assert!(
            (0.0..1.0).contains(&dropout_probability),
            "dropout probability must be in [0, 1), got {dropout_probability}"
        );
        assert!(
            (0.0..1.0).contains(&message_loss_probability),
            "message loss probability must be in [0, 1), got {message_loss_probability}"
        );
        FailurePlan {
            dropout_probability,
            dead_nodes: BTreeSet::new(),
            decided: BTreeMap::new(),
            message_loss_probability,
            loss_mode,
            seed,
            loss_streams: BTreeMap::new(),
        }
    }

    /// Marks a specific node dead, regardless of the dropout probability.
    pub fn kill_node(&mut self, node_id: NodeId) {
        self.dead_nodes.insert(node_id);
        self.decided.insert(node_id, true);
    }

    /// The configured loss mode.
    pub fn loss_mode(&self) -> LossMode {
        self.loss_mode
    }

    /// True when the node is dead. The draw is keyed by the node id (and
    /// cached), so any driver asking about the same node gets the same
    /// answer in any order.
    pub fn node_is_dead(&mut self, node_id: NodeId) -> bool {
        if let Some(&dead) = self.decided.get(&node_id) {
            return dead;
        }
        let mut draw = StdRng::seed_from_u64(stream_seed(self.seed, node_id, DROPOUT_SALT));
        let dead =
            self.dead_nodes.contains(&node_id) || draw.random::<f64>() < self.dropout_probability;
        self.decided.insert(node_id, dead);
        if dead {
            self.dead_nodes.insert(node_id);
        }
        dead
    }

    /// Number of transmission attempts needed to deliver one message from
    /// `node_id`, or `None` when the message is permanently dropped.
    ///
    /// Under [`LossMode::Retransmit`] this is a geometric number of
    /// attempts (≥ 1); under [`LossMode::Drop`] it is `Some(1)` on
    /// success and `None` on loss. Draws come from a per-node stream, so
    /// the *m*-th message of a node meets the same fate in every driver.
    pub fn transmission_attempts(&mut self, node_id: NodeId) -> Option<u32> {
        let seed = self.seed;
        let stream = self
            .loss_streams
            .entry(node_id)
            .or_insert_with(|| StdRng::seed_from_u64(stream_seed(seed, node_id, LOSS_SALT)));
        match self.loss_mode {
            LossMode::Retransmit => {
                let mut attempts = 1;
                while stream.random::<f64>() < self.message_loss_probability {
                    attempts += 1;
                }
                Some(attempts)
            }
            LossMode::Drop => {
                if stream.random::<f64>() < self.message_loss_probability {
                    None
                } else {
                    Some(1)
                }
            }
        }
    }

    /// Nodes known to be dead so far.
    pub fn dead_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.dead_nodes.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_never_fails() {
        let mut plan = FailurePlan::none();
        for i in 0..100 {
            assert!(!plan.node_is_dead(NodeId(i)));
            assert_eq!(plan.transmission_attempts(NodeId(i)), Some(1));
        }
    }

    #[test]
    fn kill_node_is_respected() {
        let mut plan = FailurePlan::none();
        plan.kill_node(NodeId(3));
        assert!(plan.node_is_dead(NodeId(3)));
        assert!(!plan.node_is_dead(NodeId(4)));
        assert_eq!(plan.dead_nodes().collect::<Vec<_>>(), vec![NodeId(3)]);
    }

    #[test]
    fn dropout_decision_is_cached() {
        let mut plan = FailurePlan::new(0.5, 0.0, LossMode::Retransmit, 42);
        let first: Vec<bool> = (0..50).map(|i| plan.node_is_dead(NodeId(i))).collect();
        let second: Vec<bool> = (0..50).map(|i| plan.node_is_dead(NodeId(i))).collect();
        assert_eq!(first, second);
        assert!(first.iter().any(|&d| d), "expected some deaths at 50%");
        assert!(first.iter().any(|&d| !d), "expected some survivors at 50%");
    }

    #[test]
    fn dropout_rate_is_statistical() {
        let mut plan = FailurePlan::new(0.3, 0.0, LossMode::Retransmit, 7);
        let dead = (0..10_000)
            .filter(|&i| plan.node_is_dead(NodeId(i)))
            .count();
        let rate = dead as f64 / 10_000.0;
        assert!((rate - 0.3).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn retransmit_attempts_are_geometric() {
        let mut plan = FailurePlan::new(0.0, 0.5, LossMode::Retransmit, 9);
        let n = 20_000;
        let total: u64 = (0..n)
            .map(|_| u64::from(plan.transmission_attempts(NodeId(0)).unwrap()))
            .sum();
        // Mean attempts = 1/(1-loss) = 2.
        let mean = total as f64 / n as f64;
        assert!((mean - 2.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn drop_mode_loses_messages() {
        let mut plan = FailurePlan::new(0.0, 0.4, LossMode::Drop, 11);
        let n = 20_000;
        let delivered = (0..n)
            .filter(|&i| plan.transmission_attempts(NodeId(i % 64)).is_some())
            .count();
        let rate = delivered as f64 / n as f64;
        assert!((rate - 0.6).abs() < 0.02, "delivery rate {rate}");
    }

    #[test]
    #[should_panic(expected = "dropout probability")]
    fn dropout_one_panics() {
        let _ = FailurePlan::new(1.0, 0.0, LossMode::Drop, 0);
    }

    #[test]
    #[should_panic(expected = "message loss probability")]
    fn loss_one_panics() {
        let _ = FailurePlan::new(0.0, 1.0, LossMode::Drop, 0);
    }

    #[test]
    fn deterministic_for_seed() {
        let mut a = FailurePlan::new(0.2, 0.2, LossMode::Drop, 5);
        let mut b = FailurePlan::new(0.2, 0.2, LossMode::Drop, 5);
        for i in 0..100 {
            assert_eq!(a.node_is_dead(NodeId(i)), b.node_is_dead(NodeId(i)));
            assert_eq!(
                a.transmission_attempts(NodeId(i)),
                b.transmission_attempts(NodeId(i))
            );
        }
    }

    #[test]
    fn decisions_are_independent_of_query_order() {
        // The same plan consulted forwards, backwards, and interleaved
        // must hand every node the same fate — this is what lets the
        // flat, threaded, and tree drivers share one plan seed.
        let mut forward = FailurePlan::new(0.3, 0.3, LossMode::Drop, 77);
        let mut backward = FailurePlan::new(0.3, 0.3, LossMode::Drop, 77);
        let fwd_dead: Vec<bool> = (0..40).map(|i| forward.node_is_dead(NodeId(i))).collect();
        let bwd_dead: Vec<bool> = (0..40)
            .rev()
            .map(|i| backward.node_is_dead(NodeId(i)))
            .collect();
        assert_eq!(
            fwd_dead,
            bwd_dead.into_iter().rev().collect::<Vec<_>>(),
            "dropout must be keyed by node id, not call order"
        );
        // Two messages per node, consumed in different global orders.
        let mut fwd_fates = Vec::new();
        for i in 0..40 {
            fwd_fates.push((
                forward.transmission_attempts(NodeId(i)),
                forward.transmission_attempts(NodeId(i)),
            ));
        }
        let mut bwd_fates = vec![(None, None); 40];
        for i in (0..40).rev() {
            let first = backward.transmission_attempts(NodeId(i));
            let second = backward.transmission_attempts(NodeId(i));
            bwd_fates[i as usize] = (first, second);
        }
        assert_eq!(fwd_fates, bwd_fates, "loss streams must be per-node");
    }

    #[test]
    fn cloned_plans_share_no_state() {
        let mut a = FailurePlan::new(0.2, 0.5, LossMode::Retransmit, 3);
        let mut b = a.clone();
        for i in 0..20 {
            assert_eq!(a.node_is_dead(NodeId(i)), b.node_is_dead(NodeId(i)));
            assert_eq!(
                a.transmission_attempts(NodeId(i)),
                b.transmission_attempts(NodeId(i))
            );
        }
    }
}
