//! The base station: per-node sample sets and top-up orchestration.

use std::collections::BTreeMap;

use crate::message::{NodeId, SampleEntry, SampleMessage};

/// The accumulated sample state for one node, as known to the base station.
///
/// Equality compares *sample state only* — the revision journal
/// ([`NodeSample::last_changed`]) is excluded. Different drivers may
/// deliver a node's samples in a different number of ingest events
/// (e.g. tree aggregation) and so stamp different revisions while
/// holding byte-identical state; the driver-conformance contract is
/// about the state, and the journal is per-station bookkeeping.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct NodeSample {
    /// The contributing node.
    pub node_id: NodeId,
    /// Size `n_i` of the node's full local dataset.
    pub population_size: usize,
    /// Cumulative sampling probability the node has reached.
    pub probability: f64,
    /// All received entries, sorted by rank, no duplicates.
    entries: Vec<SampleEntry>,
    /// Station revision at which this record last changed (see
    /// [`BaseStation::revision`]).
    #[serde(default)]
    last_changed: u64,
}

impl PartialEq for NodeSample {
    fn eq(&self, other: &Self) -> bool {
        self.node_id == other.node_id
            && self.population_size == other.population_size
            && self.probability == other.probability
            && self.entries == other.entries
    }
}

impl NodeSample {
    /// The received entries, sorted by rank.
    pub fn entries(&self) -> &[SampleEntry] {
        &self.entries
    }

    /// Number of samples held for this node.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no samples have been received.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The station revision at which this record last changed.
    ///
    /// A record counts as changed when it is created, when its claimed
    /// population moves, when its cumulative probability rises, or when
    /// a merge adds at least one new entry.
    pub fn last_changed(&self) -> u64 {
        self.last_changed
    }

    /// The closed value interval `[min, max]` covered by the received
    /// entries, or `None` when no entries are held.
    ///
    /// Entries arrive rank-sorted and each node's local dataset is
    /// sorted, so rank order *is* value order: the span is simply the
    /// first and last entry.
    pub fn value_span(&self) -> Option<(f64, f64)> {
        let first = self.entries.first()?;
        let last = self.entries.last()?;
        Some((first.value, last.value))
    }

    /// Merges one message in; reports whether the record changed.
    fn merge(&mut self, message: SampleMessage) -> bool {
        debug_assert_eq!(self.node_id, message.node_id);
        let before = (
            self.population_size,
            self.probability.to_bits(),
            self.entries.len(),
        );
        self.population_size = message.population_size;
        self.probability = self.probability.max(message.probability);
        self.entries.extend(message.entries);
        self.entries.sort_by_key(|e| e.rank);
        self.entries.dedup_by_key(|e| e.rank);
        before
            != (
                self.population_size,
                self.probability.to_bits(),
                self.entries.len(),
            )
    }
}

/// Collects sample messages and exposes per-node sample sets.
///
/// The base station is the component that *"opens the data access API to
/// data brokers"* (§II-A): brokers read [`BaseStation::node_samples`] to
/// run the RankCounting estimator, and call [`BaseStation::deficit_nodes`]
/// to learn which nodes must top up before a target sampling probability
/// is met.
#[derive(Debug, Clone, Default, serde::Serialize, serde::Deserialize)]
pub struct BaseStation {
    samples: BTreeMap<NodeId, NodeSample>,
    /// Monotone change counter: bumped once per [`BaseStation::ingest`]
    /// that actually changes a node's record. Revision `0` is the empty
    /// station. Every mutation of station state flows through `ingest`,
    /// so `revision` is a sound validity token for any derived
    /// structure (estimator indexes, answer caches): if the revision is
    /// unchanged, the sample state is byte-identical.
    #[serde(default)]
    revision: u64,
}

/// Sample-state equality: two stations are equal when every node holds
/// the same population claim, probability, and entry set. The revision
/// journal is deliberately excluded — it counts ingest *events*, which
/// differ across drivers delivering the same state.
impl PartialEq for BaseStation {
    fn eq(&self, other: &Self) -> bool {
        self.samples == other.samples
    }
}

impl BaseStation {
    /// Creates an empty base station.
    pub fn new() -> Self {
        BaseStation::default()
    }

    /// Ingests one sample message, merging it into the node's sample set.
    ///
    /// Bumps the station [`revision`](BaseStation::revision) and stamps
    /// the node's [`last_changed`](NodeSample::last_changed) iff the
    /// merge changed the record (created it, moved its population,
    /// raised its probability, or added entries). Re-delivering an
    /// already-known batch leaves the revision untouched.
    pub fn ingest(&mut self, message: SampleMessage) {
        let node_id = message.node_id;
        let changed = match self.samples.get_mut(&node_id) {
            Some(existing) => existing.merge(message),
            None => {
                let mut fresh = NodeSample {
                    node_id,
                    population_size: message.population_size,
                    probability: 0.0,
                    entries: Vec::new(),
                    last_changed: 0,
                };
                fresh.merge(message);
                self.samples.insert(node_id, fresh);
                // A node reporting for the first time is a change even
                // when the batch itself is empty (Drop-mode population
                // registration): the station's population claim moved.
                true
            }
        };
        if changed {
            self.revision += 1;
            if let Some(sample) = self.samples.get_mut(&node_id) {
                sample.last_changed = self.revision;
            }
        }
    }

    /// The station's monotone change counter (`0` = never changed).
    pub fn revision(&self) -> u64 {
        self.revision
    }

    /// Nodes whose record changed strictly after revision `rev`, in
    /// node-id order.
    ///
    /// `changed_since(0)` lists every node that has ever reported;
    /// `changed_since(self.revision())` is always empty. This is the
    /// pull side of the delta contract: a consumer remembers the
    /// revision it last synchronised at and asks the station for the
    /// exact set of dirty nodes, instead of treating the whole station
    /// as dirty after every collection round.
    pub fn changed_since(&self, rev: u64) -> Vec<NodeId> {
        self.samples
            .values()
            .filter(|s| s.last_changed > rev)
            .map(|s| s.node_id)
            .collect()
    }

    /// Number of nodes that have reported at least once.
    pub fn node_count(&self) -> usize {
        self.samples.len()
    }

    /// Total population `n = Σ n_i` across reporting nodes.
    pub fn total_population(&self) -> usize {
        self.samples.values().map(|s| s.population_size).sum()
    }

    /// Total number of samples held.
    pub fn total_samples(&self) -> usize {
        self.samples.values().map(NodeSample::len).sum()
    }

    /// The minimum cumulative sampling probability across reporting
    /// nodes, or `0` when no node has reported.
    ///
    /// This is the probability the RankCounting estimator may assume for
    /// the whole network.
    pub fn effective_probability(&self) -> f64 {
        self.samples
            .values()
            .map(|s| s.probability)
            .fold(f64::INFINITY, f64::min)
            .clamp(0.0, 1.0)
            .min(if self.samples.is_empty() { 0.0 } else { 1.0 })
    }

    /// Per-node sample sets, in node-id order.
    pub fn node_samples(&self) -> impl Iterator<Item = &NodeSample> {
        self.samples.values()
    }

    /// The sample set of one node, if it has reported.
    pub fn node_sample(&self, node_id: NodeId) -> Option<&NodeSample> {
        self.samples.get(&node_id)
    }

    /// Per-node sample sets of the nodes that actually hold data
    /// (`n_i > 0`), in node-id order.
    ///
    /// This is the zero-copy input of estimator index builds: each yielded
    /// [`NodeSample`] exposes its entry slice via [`NodeSample::entries`],
    /// so a merged index can be assembled without copying the station's
    /// sample state. Nodes with `n_i = 0` are excluded because every
    /// estimator treats them as contributing exactly zero.
    pub fn data_bearing_samples(&self) -> impl Iterator<Item = &NodeSample> {
        self.samples.values().filter(|s| s.population_size > 0)
    }

    /// The single sampling probability shared by every data-bearing node,
    /// if one exists.
    ///
    /// Returns `Some(p)` only when at least one node with `n_i > 0` has
    /// reported, all such nodes carry **bit-identical** probabilities, and
    /// `p > 0`. This is the precondition under which a merged prefix-rank
    /// index can represent the whole station with one `1/p` correction
    /// term; heterogeneous stations (e.g. after partial failures) return
    /// `None` and estimators fall back to the per-node path.
    pub fn uniform_probability(&self) -> Option<f64> {
        let mut bits: Option<u64> = None;
        for sample in self.data_bearing_samples() {
            let b = sample.probability.to_bits();
            match bits {
                None => bits = Some(b),
                Some(prev) if prev == b => {}
                Some(_) => return None,
            }
        }
        let p = f64::from_bits(bits?);
        (p > 0.0).then_some(p)
    }

    /// Nodes whose cumulative probability is below `target` (the set that
    /// must receive a top-up request before a query needing `target` can
    /// be answered).
    pub fn deficit_nodes(&self, target: f64) -> Vec<NodeId> {
        self.samples
            .values()
            .filter(|s| s.probability < target)
            .map(|s| s.node_id)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg(node: u32, n: usize, p: f64, ranks: &[u32]) -> SampleMessage {
        SampleMessage {
            node_id: NodeId(node),
            population_size: n,
            probability: p,
            entries: ranks
                .iter()
                .map(|&r| SampleEntry {
                    value: r as f64,
                    rank: r,
                })
                .collect(),
        }
    }

    #[test]
    fn ingest_creates_and_merges() {
        let mut bs = BaseStation::new();
        bs.ingest(msg(1, 100, 0.1, &[5, 2]));
        bs.ingest(msg(1, 100, 0.3, &[7]));
        bs.ingest(msg(2, 50, 0.3, &[1]));

        assert_eq!(bs.node_count(), 2);
        assert_eq!(bs.total_population(), 150);
        assert_eq!(bs.total_samples(), 4);

        let s = bs.node_sample(NodeId(1)).unwrap();
        assert_eq!(s.probability, 0.3);
        let ranks: Vec<u32> = s.entries().iter().map(|e| e.rank).collect();
        assert_eq!(ranks, vec![2, 5, 7], "entries must be sorted by rank");
    }

    #[test]
    fn duplicate_ranks_are_deduplicated() {
        let mut bs = BaseStation::new();
        bs.ingest(msg(1, 10, 0.1, &[3, 4]));
        bs.ingest(msg(1, 10, 0.2, &[4, 5]));
        assert_eq!(bs.node_sample(NodeId(1)).unwrap().len(), 3);
    }

    #[test]
    fn effective_probability_is_the_minimum() {
        let mut bs = BaseStation::new();
        assert_eq!(bs.effective_probability(), 0.0);
        bs.ingest(msg(1, 10, 0.5, &[]));
        bs.ingest(msg(2, 10, 0.2, &[]));
        assert_eq!(bs.effective_probability(), 0.2);
    }

    #[test]
    fn probability_never_decreases_on_merge() {
        let mut bs = BaseStation::new();
        bs.ingest(msg(1, 10, 0.5, &[]));
        bs.ingest(msg(1, 10, 0.2, &[])); // stale message
        assert_eq!(bs.node_sample(NodeId(1)).unwrap().probability, 0.5);
    }

    #[test]
    fn deficit_nodes_lists_lagging_nodes() {
        let mut bs = BaseStation::new();
        bs.ingest(msg(1, 10, 0.5, &[]));
        bs.ingest(msg(2, 10, 0.1, &[]));
        bs.ingest(msg(3, 10, 0.3, &[]));
        let mut lagging = bs.deficit_nodes(0.4);
        lagging.sort();
        assert_eq!(lagging, vec![NodeId(2), NodeId(3)]);
        assert!(bs.deficit_nodes(0.05).is_empty());
    }

    #[test]
    fn node_samples_iterates_in_id_order() {
        let mut bs = BaseStation::new();
        bs.ingest(msg(9, 1, 0.1, &[]));
        bs.ingest(msg(2, 1, 0.1, &[]));
        bs.ingest(msg(5, 1, 0.1, &[]));
        let ids: Vec<u32> = bs.node_samples().map(|s| s.node_id.0).collect();
        assert_eq!(ids, vec![2, 5, 9]);
    }

    #[test]
    fn data_bearing_samples_skip_empty_populations() {
        let mut bs = BaseStation::new();
        bs.ingest(msg(1, 10, 0.5, &[1]));
        bs.ingest(msg(2, 0, 0.5, &[]));
        bs.ingest(msg(3, 20, 0.5, &[2]));
        let ids: Vec<u32> = bs.data_bearing_samples().map(|s| s.node_id.0).collect();
        assert_eq!(ids, vec![1, 3]);
    }

    #[test]
    fn uniform_probability_detects_homogeneity() {
        let mut bs = BaseStation::new();
        assert_eq!(bs.uniform_probability(), None, "empty station");
        bs.ingest(msg(1, 10, 0.25, &[1]));
        bs.ingest(msg(2, 10, 0.25, &[2]));
        // Zero-population nodes do not break homogeneity.
        bs.ingest(msg(3, 0, 0.9, &[]));
        assert_eq!(bs.uniform_probability(), Some(0.25));
        // A lagging node makes the station heterogeneous.
        bs.ingest(msg(4, 10, 0.1, &[3]));
        assert_eq!(bs.uniform_probability(), None);
    }

    #[test]
    fn uniform_probability_rejects_zero() {
        let mut bs = BaseStation::new();
        bs.ingest(msg(1, 10, 0.0, &[]));
        assert_eq!(bs.uniform_probability(), None);
    }

    #[test]
    fn revision_tracks_only_real_changes() {
        let mut bs = BaseStation::new();
        assert_eq!(bs.revision(), 0);

        bs.ingest(msg(1, 10, 0.1, &[3]));
        assert_eq!(bs.revision(), 1, "first report is a change");

        // Re-delivering the exact same batch changes nothing.
        bs.ingest(msg(1, 10, 0.1, &[3]));
        assert_eq!(bs.revision(), 1, "idempotent re-delivery");

        // A duplicate rank with a higher probability is still a change
        // (the probability moved).
        bs.ingest(msg(1, 10, 0.2, &[3]));
        assert_eq!(bs.revision(), 2);

        // New entries at the same probability are a change.
        bs.ingest(msg(1, 10, 0.2, &[4]));
        assert_eq!(bs.revision(), 3);

        // An empty batch registering a new node is a change.
        bs.ingest(msg(2, 5, 0.0, &[]));
        assert_eq!(bs.revision(), 4);

        assert_eq!(bs.node_sample(NodeId(1)).unwrap().last_changed(), 3);
        assert_eq!(bs.node_sample(NodeId(2)).unwrap().last_changed(), 4);
    }

    #[test]
    fn changed_since_reports_the_exact_dirty_set() {
        let mut bs = BaseStation::new();
        bs.ingest(msg(1, 10, 0.1, &[1]));
        bs.ingest(msg(2, 10, 0.1, &[2]));
        let synced = bs.revision();

        assert!(bs.changed_since(synced).is_empty());
        assert_eq!(
            bs.changed_since(0),
            vec![NodeId(1), NodeId(2)],
            "from revision zero every reporter is dirty"
        );

        bs.ingest(msg(2, 10, 0.3, &[5]));
        bs.ingest(msg(7, 10, 0.3, &[9]));
        assert_eq!(bs.changed_since(synced), vec![NodeId(2), NodeId(7)]);
        assert!(bs.changed_since(bs.revision()).is_empty());
    }

    #[test]
    fn value_span_covers_received_entries() {
        let mut bs = BaseStation::new();
        bs.ingest(msg(1, 10, 0.1, &[]));
        assert_eq!(bs.node_sample(NodeId(1)).unwrap().value_span(), None);
        bs.ingest(msg(1, 10, 0.2, &[4, 2, 9]));
        assert_eq!(
            bs.node_sample(NodeId(1)).unwrap().value_span(),
            Some((2.0, 9.0))
        );
    }

    #[test]
    fn empty_station_defaults() {
        let bs = BaseStation::new();
        assert_eq!(bs.node_count(), 0);
        assert_eq!(bs.total_population(), 0);
        assert_eq!(bs.total_samples(), 0);
        assert!(bs.node_sample(NodeId(1)).is_none());
        assert!(bs.deficit_nodes(0.5).is_empty());
    }
}
