//! Sensor nodes: local data, ranks, and incremental Bernoulli sampling.

// prc-lint: allow(B003, reason = "seeded per-node Bernoulli sampling randomness; not privacy noise")
use rand::{rngs::StdRng, RngExt, SeedableRng};

use crate::message::{NodeId, SampleEntry, SampleMessage};

/// A smart device holding a sorted local dataset `D_i`.
///
/// Each node samples its data elements independently with probability `p`
/// and ships the sampled values *with their local ranks* to the base
/// station (§III-A). When the base station later needs a higher sampling
/// probability, the node **tops up**: every not-yet-sampled element is
/// included with conditional probability `(p' − p)/(1 − p)`, which makes
/// the cumulative inclusion probability of every element exactly `p'`
/// without discarding the samples already shipped.
///
/// # Examples
///
/// ```
/// use prc_net::message::NodeId;
/// use prc_net::node::SensorNode;
///
/// let mut node = SensorNode::new(NodeId(0), vec![5.0, 1.0, 3.0], 42);
/// let batch = node.sample_to(1.0); // full sampling
/// assert_eq!(batch.entries.len(), 3);
/// // Ranks follow the sorted order: 1.0 has rank 1, 5.0 has rank 3.
/// assert_eq!(batch.entries[0].value, 1.0);
/// assert_eq!(batch.entries[2].rank, 3);
/// // Topping up to a lower probability is a no-op.
/// assert!(node.sample_to(0.5).entries.is_empty());
/// ```
#[derive(Debug)]
pub struct SensorNode {
    id: NodeId,
    /// Local data, sorted ascending. Rank `r` (1-based) = `data[r-1]`.
    data: Vec<f64>,
    /// Whether each position has already been sampled and shipped.
    sampled: Vec<bool>,
    /// Cumulative inclusion probability reached so far.
    probability: f64,
    rng: StdRng,
}

impl SensorNode {
    /// Creates a node from its raw (unsorted) local data.
    ///
    /// The RNG is seeded from `seed` and the node id, so a network of
    /// nodes built from the same seed is fully deterministic.
    ///
    /// # Panics
    ///
    /// Panics if `data` contains NaN (ranks would be ill-defined).
    pub fn new(id: NodeId, mut data: Vec<f64>, seed: u64) -> Self {
        assert!(
            data.iter().all(|v| !v.is_nan()),
            "node data must not contain NaN"
        );
        data.sort_by(f64::total_cmp);
        let len = data.len();
        SensorNode {
            id,
            data,
            sampled: vec![false; len],
            probability: 0.0,
            rng: StdRng::seed_from_u64(seed ^ (u64::from(id.0) << 32 | 0x9e37_79b9)),
        }
    }

    /// The node's identifier.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Size `n_i` of the local dataset.
    pub fn population_size(&self) -> usize {
        self.data.len()
    }

    /// Cumulative sampling probability reached so far.
    pub fn probability(&self) -> f64 {
        self.probability
    }

    /// The sorted local data (test and exact-count support).
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Number of elements sampled so far.
    pub fn sampled_count(&self) -> usize {
        self.sampled.iter().filter(|&&s| s).count()
    }

    /// Raises the cumulative sampling probability to `target` and returns
    /// the batch of newly sampled entries.
    ///
    /// Returns an empty batch when `target` does not exceed the current
    /// probability. Entries are sorted by rank. The cumulative inclusion
    /// probability of *every* element after the call is exactly
    /// `max(target, previous)`.
    ///
    /// # Panics
    ///
    /// Panics if `target` is not in `(0, 1]`.
    pub fn sample_to(&mut self, target: f64) -> SampleMessage {
        assert!(
            target > 0.0 && target <= 1.0,
            "sampling probability must be in (0, 1], got {target}"
        );
        let mut entries = Vec::new();
        if target > self.probability {
            // Conditional inclusion probability for not-yet-sampled elements.
            let conditional = if self.probability >= 1.0 {
                0.0
            } else {
                (target - self.probability) / (1.0 - self.probability)
            };
            for (pos, taken) in self.sampled.iter_mut().enumerate() {
                if !*taken && self.rng.random::<f64>() < conditional {
                    *taken = true;
                    entries.push(SampleEntry {
                        value: self.data[pos],
                        rank: pos as u32 + 1,
                    });
                }
            }
            self.probability = target;
        }
        SampleMessage {
            node_id: self.id,
            population_size: self.data.len(),
            probability: self.probability,
            entries,
        }
    }

    /// Exact local range count `γ(l, u, i) = |{x ∈ D_i : l ≤ x ≤ u}|`.
    ///
    /// Ground truth for evaluation; a real device would never be asked to
    /// compute this over the network.
    pub fn exact_range_count(&self, l: f64, u: f64) -> usize {
        if l > u {
            return 0;
        }
        let lo = self.data.partition_point(|&v| v < l);
        let hi = self.data.partition_point(|&v| v <= u);
        hi - lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node(data: Vec<f64>, seed: u64) -> SensorNode {
        SensorNode::new(NodeId(1), data, seed)
    }

    #[test]
    fn data_is_sorted_and_ranks_match() {
        let mut n = node(vec![5.0, 1.0, 3.0], 7);
        assert_eq!(n.data(), &[1.0, 3.0, 5.0]);
        let batch = n.sample_to(1.0);
        assert_eq!(batch.entries.len(), 3);
        for (i, e) in batch.entries.iter().enumerate() {
            assert_eq!(e.rank as usize, i + 1);
            assert_eq!(e.value, n.data()[i]);
        }
    }

    #[test]
    fn p_one_samples_everything() {
        let mut n = node((0..100).map(f64::from).collect(), 3);
        let batch = n.sample_to(1.0);
        assert_eq!(batch.entries.len(), 100);
        assert_eq!(n.sampled_count(), 100);
        assert_eq!(batch.probability, 1.0);
    }

    #[test]
    fn top_up_only_ships_new_entries() {
        let mut n = node((0..10_000).map(f64::from).collect(), 11);
        let first = n.sample_to(0.2);
        let second = n.sample_to(0.5);
        // No rank appears twice across batches.
        let mut ranks: Vec<u32> = first
            .entries
            .iter()
            .chain(second.entries.iter())
            .map(|e| e.rank)
            .collect();
        let total = ranks.len();
        ranks.sort_unstable();
        ranks.dedup();
        assert_eq!(ranks.len(), total, "a rank was shipped twice");
        assert_eq!(n.sampled_count(), total);
        assert_eq!(n.probability(), 0.5);
    }

    #[test]
    fn top_up_reaches_exact_cumulative_probability() {
        // Statistically: sampling to 0.3 then topping to 0.6 must include
        // each element with probability 0.6.
        let mut total = 0usize;
        let runs = 400;
        let size = 1_000;
        for seed in 0..runs {
            let mut n = node((0..size).map(f64::from).collect(), seed);
            n.sample_to(0.3);
            n.sample_to(0.6);
            total += n.sampled_count();
        }
        let rate = total as f64 / (runs as usize * size as usize) as f64;
        assert!((rate - 0.6).abs() < 0.01, "empirical inclusion rate {rate}");
    }

    #[test]
    fn lower_target_is_a_noop() {
        let mut n = node((0..1000).map(f64::from).collect(), 5);
        n.sample_to(0.5);
        let count = n.sampled_count();
        let batch = n.sample_to(0.3);
        assert!(batch.entries.is_empty());
        assert_eq!(n.sampled_count(), count);
        assert_eq!(n.probability(), 0.5);
    }

    #[test]
    fn repeated_same_target_is_a_noop() {
        let mut n = node((0..1000).map(f64::from).collect(), 5);
        n.sample_to(0.4);
        let batch = n.sample_to(0.4);
        assert!(batch.entries.is_empty());
    }

    #[test]
    #[should_panic(expected = "must be in (0, 1]")]
    fn zero_probability_panics() {
        node(vec![1.0], 0).sample_to(0.0);
    }

    #[test]
    #[should_panic(expected = "must be in (0, 1]")]
    fn above_one_panics() {
        node(vec![1.0], 0).sample_to(1.5);
    }

    #[test]
    #[should_panic(expected = "must not contain NaN")]
    fn nan_data_panics() {
        let _ = node(vec![1.0, f64::NAN], 0);
    }

    #[test]
    fn empty_node_is_fine() {
        let mut n = node(vec![], 1);
        let batch = n.sample_to(0.9);
        assert!(batch.entries.is_empty());
        assert_eq!(batch.population_size, 0);
        assert_eq!(n.exact_range_count(0.0, 10.0), 0);
    }

    #[test]
    fn exact_range_count_is_inclusive_on_both_ends() {
        let n = node(vec![1.0, 2.0, 2.0, 3.0, 5.0], 1);
        assert_eq!(n.exact_range_count(2.0, 3.0), 3);
        assert_eq!(n.exact_range_count(0.0, 10.0), 5);
        assert_eq!(n.exact_range_count(4.0, 4.5), 0);
        assert_eq!(n.exact_range_count(5.0, 5.0), 1);
        assert_eq!(n.exact_range_count(3.0, 2.0), 0); // inverted range
    }

    #[test]
    fn deterministic_per_seed_and_id() {
        let mut a = SensorNode::new(NodeId(4), (0..500).map(f64::from).collect(), 99);
        let mut b = SensorNode::new(NodeId(4), (0..500).map(f64::from).collect(), 99);
        assert_eq!(a.sample_to(0.3), b.sample_to(0.3));
        // Different ids diverge.
        let mut c = SensorNode::new(NodeId(5), (0..500).map(f64::from).collect(), 99);
        assert_ne!(a.sample_to(0.9).entries, c.sample_to(0.9).entries);
    }

    #[test]
    fn sampling_rate_is_close_to_p() {
        let mut n = node((0..50_000).map(f64::from).collect(), 13);
        n.sample_to(0.2);
        let rate = n.sampled_count() as f64 / 50_000.0;
        assert!((rate - 0.2).abs() < 0.01, "rate {rate}");
    }
}
