//! The general tree model (§III-A: *"algorithms on flat models can be
//! easily extended to a general tree model"*).
//!
//! Nodes are arranged in a balanced d-ary aggregation tree rooted at the
//! base station. Two protocols run over it:
//!
//! * **sample forwarding** — each node's sample batch is relayed hop by
//!   hop to the root, so its transmission cost is multiplied by the
//!   node's depth; the base station ends up with exactly the same sample
//!   state as in the flat model. [`TreeNetwork`] implements
//!   [`crate::network::Network`], so the broker pipeline in `prc-core`
//!   runs unchanged over the tree model — only the cost meter sees the
//!   topology;
//! * **in-network exact aggregation** ([`TreeNetwork::aggregate_exact_count`]) —
//!   the TAG-style baseline: each node computes its local exact count and
//!   partial sums merge at interior nodes, costing one fixed-size message
//!   per tree edge. This is the expensive-per-query alternative the
//!   paper's one-sample/many-queries design avoids.

use crate::base_station::BaseStation;
use crate::failure::{FailurePlan, LossMode};
use crate::message::{Message, NodeId, SampleMessage, MESSAGE_HEADER_BYTES};
use crate::network::{CostMeter, Network};
use crate::node::SensorNode;
use crate::trace::{TraceEvent, Tracer};

/// Wire size of one partial-sum aggregation message.
pub const AGGREGATE_MESSAGE_BYTES: usize = MESSAGE_HEADER_BYTES + 8;

/// A balanced d-ary aggregation tree of sensor nodes.
///
/// # Examples
///
/// ```
/// use prc_net::tree::TreeNetwork;
///
/// let partitions: Vec<Vec<f64>> = (0..7).map(|i| vec![f64::from(i); 10]).collect();
/// let mut tree = TreeNetwork::from_partitions(partitions, 2, 42);
/// tree.collect_samples(0.5);
/// assert_eq!(tree.max_depth(), 3); // a 7-node binary tree
/// let (count, messages, _bytes) = tree.aggregate_exact_count(2.0, 5.0);
/// assert_eq!(count, 40); // values 2, 3, 4, 5 × 10 records
/// assert_eq!(messages, 7); // one partial sum per node
/// ```
#[derive(Debug)]
pub struct TreeNetwork {
    nodes: Vec<SensorNode>,
    /// `parent[i]` is the index of node `i`'s parent, or `None` for
    /// children of the base station (the tree's roots).
    parent: Vec<Option<usize>>,
    /// `depth[i]` = number of hops from node `i` to the base station (≥ 1).
    depth: Vec<u32>,
    station: BaseStation,
    meter: CostMeter,
    failure: FailurePlan,
    tracer: Option<Tracer>,
}

impl TreeNetwork {
    /// Builds a balanced tree with the given branching factor: node `i`'s
    /// parent is node `(i − 1) / branching` and node `0` reports directly
    /// to the base station.
    ///
    /// # Panics
    ///
    /// Panics if `partitions` is empty or `branching == 0`.
    pub fn from_partitions(partitions: Vec<Vec<f64>>, branching: usize, seed: u64) -> Self {
        assert!(!partitions.is_empty(), "network needs at least one node");
        assert!(branching > 0, "branching factor must be positive");
        let k = partitions.len();
        let nodes: Vec<SensorNode> = partitions
            .into_iter()
            .enumerate()
            .map(|(i, data)| SensorNode::new(NodeId(i as u32), data, seed))
            .collect();
        let mut parent = Vec::with_capacity(k);
        let mut depth = Vec::with_capacity(k);
        for i in 0..k {
            if i == 0 {
                parent.push(None);
                depth.push(1);
            } else {
                let p = (i - 1) / branching;
                parent.push(Some(p));
                depth.push(depth[p] + 1);
            }
        }
        TreeNetwork {
            nodes,
            parent,
            depth,
            station: BaseStation::new(),
            meter: CostMeter::new(),
            failure: FailurePlan::none(),
            tracer: None,
        }
    }

    /// Installs a failure plan (replacing any previous plan).
    pub fn set_failure_plan(&mut self, plan: FailurePlan) {
        self.failure = plan;
    }

    /// Attaches an event tracer; subsequent rounds emit [`TraceEvent`]s.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = Some(tracer);
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Total data elements across all nodes.
    pub fn total_data_size(&self) -> usize {
        self.nodes.iter().map(SensorNode::population_size).sum()
    }

    /// Hop distance of node `i` from the base station.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn depth(&self, i: usize) -> u32 {
        self.depth[i]
    }

    /// Maximum depth of the tree.
    pub fn max_depth(&self) -> u32 {
        self.depth.iter().copied().max().unwrap_or(0)
    }

    /// The base station's view of collected samples.
    pub fn station(&self) -> &BaseStation {
        &self.station
    }

    /// The cost meter.
    pub fn meter(&self) -> &CostMeter {
        &self.meter
    }

    /// Exact global range count — ground truth for evaluation.
    pub fn exact_range_count(&self, l: f64, u: f64) -> usize {
        self.nodes.iter().map(|n| n.exact_range_count(l, u)).sum()
    }

    /// Runs one collection round with hop-multiplied costs.
    ///
    /// Every live node whose entire path to the root is alive raises its
    /// sampling probability to `target`; its batch is charged once per
    /// hop (and, under retransmission, once per attempt per hop). Nodes
    /// cut off by a dead ancestor cannot deliver and are traced as
    /// silent. A batch lost under [`LossMode::Drop`] dies on its first
    /// link (one charged transmission); the node still registers its
    /// population and probability claim with the station, exactly like
    /// the flat driver.
    ///
    /// Returns the number of sample entries that reached the base station.
    ///
    /// # Panics
    ///
    /// Panics if `target` is not in `(0, 1]`.
    pub fn collect_samples(&mut self, target: f64) -> usize {
        assert!(
            target > 0.0 && target <= 1.0,
            "sampling probability must be in (0, 1], got {target}"
        );
        let alive: Vec<bool> = (0..self.nodes.len())
            .map(|i| !self.failure.node_is_dead(NodeId(i as u32)))
            .collect();
        let connected: Vec<bool> = (0..self.nodes.len())
            .map(|i| self.path_is_alive(i, &alive))
            .collect();

        let mut delivered = 0;
        for (i, node) in self.nodes.iter_mut().enumerate() {
            if !connected[i] {
                if let Some(tracer) = &self.tracer {
                    tracer.record(TraceEvent::NodeSilent { node: node.id() });
                }
                continue;
            }
            if node.probability() >= target {
                continue;
            }
            let hops = self.depth[i];
            let request = Message::TopUpRequest {
                node_id: node.id(),
                target_probability: target,
            };
            self.meter.record(&request, hops, 1);
            if let Some(tracer) = &self.tracer {
                tracer.record(TraceEvent::TopUpRequested {
                    node: node.id(),
                    target,
                });
            }
            let batch = node.sample_to(target);
            let message = Message::Sample(batch.clone());
            match self.failure.transmission_attempts(batch.node_id) {
                Some(attempts) => {
                    self.meter.record(&message, hops, attempts);
                    delivered += batch.entries.len();
                    if let Some(tracer) = &self.tracer {
                        tracer.record(TraceEvent::BatchDelivered {
                            node: batch.node_id,
                            entries: batch.entries.len(),
                            attempts,
                        });
                    }
                    self.station.ingest(batch);
                }
                None => {
                    self.meter.record_lost(&message);
                    if let Some(tracer) = &self.tracer {
                        tracer.record(TraceEvent::BatchLost {
                            node: batch.node_id,
                            entries: batch.entries.len(),
                        });
                    }
                    if self.failure.loss_mode() == LossMode::Drop {
                        self.station.ingest(SampleMessage {
                            entries: Vec::new(),
                            ..batch
                        });
                    }
                }
            }
        }
        if let Some(tracer) = &self.tracer {
            let round = tracer.next_round();
            tracer.record(TraceEvent::RoundCompleted {
                round,
                target,
                delivered,
            });
        }
        delivered
    }

    /// TAG-style in-network exact aggregation: every live, connected node
    /// computes its local `γ(l, u, i)`; partial sums merge on the way up,
    /// costing one fixed-size message per live tree edge.
    ///
    /// Returns `(count, messages, bytes)` for this single query.
    pub fn aggregate_exact_count(&mut self, l: f64, u: f64) -> (usize, u64, u64) {
        let alive: Vec<bool> = (0..self.nodes.len())
            .map(|i| !self.failure.node_is_dead(NodeId(i as u32)))
            .collect();
        let connected: Vec<bool> = (0..self.nodes.len())
            .map(|i| self.path_is_alive(i, &alive))
            .collect();

        let mut count = 0usize;
        let mut messages = 0u64;
        let mut bytes = 0u64;
        for (i, node) in self.nodes.iter().enumerate() {
            if connected[i] {
                count += node.exact_range_count(l, u);
                // One partial-sum message on the edge toward the parent.
                messages += 1;
                bytes += AGGREGATE_MESSAGE_BYTES as u64;
            }
        }
        (count, messages, bytes)
    }

    /// True when node `i` and all its ancestors are alive.
    fn path_is_alive(&self, mut i: usize, alive: &[bool]) -> bool {
        loop {
            if !alive[i] {
                return false;
            }
            match self.parent[i] {
                Some(p) => i = p,
                None => return true,
            }
        }
    }
}

impl Network for TreeNetwork {
    fn node_count(&self) -> usize {
        TreeNetwork::node_count(self)
    }

    fn total_data_size(&self) -> usize {
        TreeNetwork::total_data_size(self)
    }

    fn station(&self) -> &BaseStation {
        TreeNetwork::station(self)
    }

    fn meter(&self) -> &CostMeter {
        TreeNetwork::meter(self)
    }

    fn collect_samples(&mut self, target: f64) -> usize {
        TreeNetwork::collect_samples(self, target)
    }

    fn set_failure_plan(&mut self, plan: FailurePlan) {
        TreeNetwork::set_failure_plan(self, plan);
    }

    fn set_tracer(&mut self, tracer: Tracer) {
        TreeNetwork::set_tracer(self, tracer);
    }

    fn exact_range_count(&self, l: f64, u: f64) -> usize {
        TreeNetwork::exact_range_count(self, l, u)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn partitions(k: usize, per_node: usize) -> Vec<Vec<f64>> {
        (0..k)
            .map(|i| (0..per_node).map(|j| (i * per_node + j) as f64).collect())
            .collect()
    }

    #[test]
    fn binary_tree_depths() {
        let net = TreeNetwork::from_partitions(partitions(7, 10), 2, 0);
        assert_eq!(
            (0..7).map(|i| net.depth(i)).collect::<Vec<_>>(),
            vec![1, 2, 2, 3, 3, 3, 3]
        );
        assert_eq!(net.max_depth(), 3);
    }

    #[test]
    fn star_topology_with_huge_branching() {
        let net = TreeNetwork::from_partitions(partitions(5, 10), 100, 0);
        // Node 0 is the root child; nodes 1..5 all hang off node 0.
        assert_eq!(net.depth(0), 1);
        for i in 1..5 {
            assert_eq!(net.depth(i), 2);
        }
    }

    #[test]
    fn collection_reaches_station_with_hop_costs() {
        let parts = partitions(7, 200);
        let mut tree = TreeNetwork::from_partitions(parts.clone(), 2, 13);
        let delivered = tree.collect_samples(0.5);
        assert_eq!(tree.station().node_count(), 7);
        assert_eq!(tree.station().total_samples(), delivered);

        // Hop multiplication: the tree must cost strictly more messages
        // than a flat network moving the same batches.
        let mut flat = crate::network::FlatNetwork::from_partitions(parts, 13);
        flat.collect_samples(0.5);
        assert_eq!(
            flat.station(),
            tree.station(),
            "same seed must sample identically"
        );
        assert!(tree.meter().snapshot().messages > flat.meter().snapshot().messages);
        assert!(tree.meter().snapshot().bytes > flat.meter().snapshot().bytes);
    }

    #[test]
    fn dead_ancestor_cuts_off_subtree() {
        let mut tree = TreeNetwork::from_partitions(partitions(7, 50), 2, 1);
        let mut plan = FailurePlan::none();
        plan.kill_node(NodeId(1)); // children 3 and 4 are cut off too
        tree.set_failure_plan(plan);
        tree.collect_samples(0.9);
        // Nodes 1, 3, 4 missing; 0, 2, 5, 6 deliver.
        assert_eq!(tree.station().node_count(), 4);
    }

    #[test]
    fn exact_aggregation_counts_and_costs() {
        let mut tree = TreeNetwork::from_partitions(partitions(5, 100), 2, 1);
        let truth = tree.exact_range_count(100.0, 250.0);
        let (count, messages, bytes) = tree.aggregate_exact_count(100.0, 250.0);
        assert_eq!(count, truth);
        assert_eq!(messages, 5);
        assert_eq!(bytes, 5 * AGGREGATE_MESSAGE_BYTES as u64);
    }

    #[test]
    fn exact_aggregation_under_failure_undercounts() {
        let mut tree = TreeNetwork::from_partitions(partitions(7, 100), 2, 1);
        let truth = tree.exact_range_count(0.0, 1_000.0);
        let mut plan = FailurePlan::none();
        plan.kill_node(NodeId(2)); // cuts off 2, 5, 6
        tree.set_failure_plan(plan);
        let (count, messages, _) = tree.aggregate_exact_count(0.0, 1_000.0);
        assert!(count < truth);
        assert_eq!(messages, 4);
    }

    #[test]
    #[should_panic(expected = "must be in (0, 1]")]
    fn tree_rejects_bad_probability() {
        let mut net = TreeNetwork::from_partitions(partitions(2, 10), 2, 1);
        net.collect_samples(0.0);
    }

    #[test]
    fn tree_matches_flat_under_the_same_failure_plan() {
        // Leaf-only kills keep connectivity equal to liveness, so the
        // tree must agree with the flat driver byte for byte.
        let parts = partitions(7, 200);
        let mk_plan = || {
            let mut plan = FailurePlan::new(0.0, 0.3, LossMode::Drop, 23);
            plan.kill_node(NodeId(5));
            plan.kill_node(NodeId(6));
            plan
        };

        let mut flat = crate::network::FlatNetwork::from_partitions(parts.clone(), 19);
        flat.set_failure_plan(mk_plan());
        let flat_tracer = Tracer::new(128);
        flat.set_tracer(flat_tracer.clone());
        flat.collect_samples(0.4);

        let mut tree = TreeNetwork::from_partitions(parts, 2, 19);
        tree.set_failure_plan(mk_plan());
        let tree_tracer = Tracer::new(128);
        tree.set_tracer(tree_tracer.clone());
        tree.collect_samples(0.4);

        assert_eq!(flat.station(), tree.station());
        assert_eq!(flat_tracer.events(), tree_tracer.events());
    }

    #[test]
    fn drop_mode_still_registers_population() {
        let mut tree = TreeNetwork::from_partitions(partitions(30, 100), 2, 1);
        tree.set_failure_plan(FailurePlan::new(0.0, 0.5, LossMode::Drop, 2));
        tree.collect_samples(0.5);
        let cost = tree.meter().snapshot();
        assert!(cost.lost_messages > 0, "expected losses at 50%");
        assert_eq!(tree.station().node_count(), 30);
        assert_eq!(tree.station().total_population(), 3_000);
        assert_eq!(cost.samples, tree.station().total_samples() as u64);
    }

    #[test]
    fn per_node_bytes_scale_with_depth() {
        // With no failures, every tree node ships the same batch as in
        // the flat model, charged depth-many times.
        let parts = partitions(7, 300);
        let mut flat = crate::network::FlatNetwork::from_partitions(parts.clone(), 13);
        flat.collect_samples(0.5);
        let mut tree = TreeNetwork::from_partitions(parts, 2, 13);
        tree.collect_samples(0.5);

        let flat_bytes = flat.meter().per_node_bytes();
        let tree_bytes = tree.meter().per_node_bytes();
        for (i, (&flat_b, &tree_b)) in flat_bytes.values().zip(tree_bytes.values()).enumerate() {
            assert_eq!(
                tree_b,
                flat_b * u64::from(tree.depth(i)),
                "node {i} must be charged depth-many times its flat cost"
            );
        }
    }

    #[test]
    #[should_panic(expected = "branching factor")]
    fn zero_branching_panics() {
        let _ = TreeNetwork::from_partitions(partitions(2, 2), 0, 0);
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn empty_tree_panics() {
        let _ = TreeNetwork::from_partitions(vec![], 2, 0);
    }
}
