//! The executable [`Network`] contract: a driver-generic conformance kit.
//!
//! PRs grew this workspace three network drivers — flat, threaded, and
//! tree — and a broker pipeline that is generic over all of them. The
//! pricing engine's arbitrage-freeness audit is only meaningful if every
//! driver feeding it produces the *same* sample state for the same seed,
//! so the contract the drivers share is pinned here as executable checks
//! rather than prose:
//!
//! 1. **Seed determinism** — rebuilding and re-running a driver with
//!    identical construction parameters yields a byte-identical
//!    [`BaseStation`] and identical costs;
//! 2. **Monotone top-up** — [`Network::top_up`] collects only when the
//!    station's effective probability lags the target, and a round at or
//!    below the reached probability moves nothing;
//! 3. **Cost-meter invariants** — `samples == station.total_samples()`,
//!    `free ≤ total` (so chargeable messages never underflow), and
//!    per-node byte attributions sum to the byte total;
//! 4. **Failure semantics** — dead nodes stay silent;
//!    [`LossMode::Retransmit`] never changes data but costs messages;
//!    [`LossMode::Drop`] under-delivers but still registers population;
//! 5. **Tracer accounting** — per-round events are complete: every
//!    non-silent lagging node is requested, every request resolves to a
//!    delivery or a loss, and the round summary carries the delivered
//!    total.
//! 6. **Delta reporting** — [`Network::collect_delta`] names exactly
//!    the nodes whose station record changed: a first round reports
//!    every live node, a redundant round reports nothing and leaves the
//!    revision untouched, a catch-up round after a lifted failure plan
//!    reports precisely the previously-dead nodes, and the delta's
//!    `revision` always brackets [`BaseStation::changed_since`].
//!
//! [`check_driver`] runs the whole contract against any factory closure
//! and returns a [`ConformanceReport`] holding the canonical-scenario
//! outcomes; [`assert_drivers_agree`] then pins the *cross-driver*
//! half of the contract — all drivers byte-identical on the same seed,
//! including under one shared [`FailurePlan`]. The integration test
//! `tests/driver_conformance.rs` instantiates both for every driver in
//! the workspace; DESIGN.md §12 documents the invariant catalog.
//!
//! The canonical topology is 7 nodes so that a binary [`crate::tree::TreeNetwork`]
//! over the same partitions has leaves {3, 4, 5, 6}: the shared failure
//! scenario only kills **leaf** nodes, which keeps tree connectivity
//! equal to plain liveness and lets all three drivers agree exactly.

use crate::base_station::BaseStation;
use crate::failure::{FailurePlan, LossMode};
use crate::message::NodeId;
use crate::network::{CostSnapshot, Network, RoundDelta};
use crate::trace::Tracer;

/// Nodes in the canonical scenario (binary-tree leaves are 3..=6).
pub const CANONICAL_NODES: usize = 7;
/// Data elements per node in the canonical scenario.
pub const CANONICAL_PER_NODE: usize = 400;
/// Sampling seed shared by every conformance run.
pub const CANONICAL_SEED: u64 = 0x00C0_FFEE;
/// The escalating (and once-repeating) collection schedule.
pub const CANONICAL_SCHEDULE: [f64; 4] = [0.2, 0.55, 0.55, 0.9];
/// Failure-plan seed for the shared cross-driver failure scenario.
pub const CANONICAL_FAILURE_SEED: u64 = 0xBAD5_EED5;

/// The partitions every conformance run distributes over its driver.
pub fn canonical_partitions() -> Vec<Vec<f64>> {
    (0..CANONICAL_NODES)
        .map(|i| {
            (0..CANONICAL_PER_NODE)
                .map(|j| (i * CANONICAL_PER_NODE + j) as f64 * 0.5 - 100.0)
                .collect()
        })
        .collect()
}

/// The shared failure scenario: two dead leaves plus unacknowledged
/// message loss. Leaf-only kills keep every driver's delivered set equal.
pub fn canonical_failure_plan() -> FailurePlan {
    let mut plan = FailurePlan::new(0.0, 0.3, LossMode::Drop, CANONICAL_FAILURE_SEED);
    plan.kill_node(NodeId(5));
    plan.kill_node(NodeId(6));
    plan
}

/// Serializes a station's full sample state into a canonical byte string:
/// per node (in station order) the id, population, probability bits,
/// entry count, then every entry's value bits and rank. Two stations with
/// equal fingerprints hold bit-identical sample state.
pub fn station_fingerprint(station: &BaseStation) -> Vec<u8> {
    let mut bytes = Vec::new();
    for node in station.node_samples() {
        bytes.extend_from_slice(&node.node_id.0.to_le_bytes());
        bytes.extend_from_slice(&(node.population_size as u64).to_le_bytes());
        bytes.extend_from_slice(&node.probability.to_bits().to_le_bytes());
        bytes.extend_from_slice(&(node.len() as u64).to_le_bytes());
        for entry in node.entries() {
            bytes.extend_from_slice(&entry.value.to_bits().to_le_bytes());
            bytes.extend_from_slice(&entry.rank.to_le_bytes());
        }
    }
    bytes
}

/// What one driver produced on the canonical scenarios; the cross-driver
/// comparison input for [`assert_drivers_agree`].
#[derive(Debug, Clone)]
pub struct ConformanceReport {
    /// Human-readable driver name (used in assertion messages).
    pub driver: String,
    /// Station state after the clean canonical schedule.
    pub clean_station: BaseStation,
    /// Meter totals after the clean canonical schedule.
    pub clean_cost: CostSnapshot,
    /// Station state after the shared failure scenario.
    pub failure_station: BaseStation,
    /// Meter totals after the shared failure scenario.
    pub failure_cost: CostSnapshot,
    /// Per-round deltas reported over the clean canonical schedule.
    pub clean_deltas: Vec<RoundDelta>,
    /// Per-round deltas reported under the shared failure scenario.
    pub failure_deltas: Vec<RoundDelta>,
}

/// Checks the cost-meter invariants that must hold after every round.
fn assert_cost_invariants<N: Network>(driver: &str, network: &N) {
    let snap = network.meter().snapshot();
    assert_eq!(
        snap.samples,
        network.station().total_samples() as u64,
        "{driver}: metered samples must equal the station's holdings"
    );
    assert!(
        snap.free_messages <= snap.messages,
        "{driver}: free messages must never exceed total messages"
    );
    let attributed: u64 = network.meter().per_node_bytes().values().sum();
    assert_eq!(
        attributed, snap.bytes,
        "{driver}: per-node byte attributions must sum to the byte total"
    );
}

/// Runs the full `Network` contract against one driver factory.
///
/// The factory receives `(partitions, seed)` and must return a fresh,
/// unused driver. The kit builds several instances — the contract is
/// about what *identical construction* guarantees.
///
/// # Panics
///
/// Panics (with the driver name in the message) on any contract
/// violation.
///
/// # Examples
///
/// ```
/// use prc_net::conformance::check_driver;
/// use prc_net::network::FlatNetwork;
///
/// let report = check_driver("flat", |parts, seed| {
///     FlatNetwork::from_partitions(parts, seed)
/// });
/// assert_eq!(report.driver, "flat");
/// ```
pub fn check_driver<N, F>(driver: &str, build: F) -> ConformanceReport
where
    N: Network,
    F: Fn(Vec<Vec<f64>>, u64) -> N,
{
    let run_schedule = |plan: Option<FailurePlan>, schedule: &[f64]| {
        let mut network = build(canonical_partitions(), CANONICAL_SEED);
        if let Some(plan) = plan {
            network.set_failure_plan(plan);
        }
        let mut delivered = 0;
        let mut deltas = Vec::with_capacity(schedule.len());
        for &target in schedule {
            let before = network.station().revision();
            let delta = network.collect_delta(target);
            assert_cost_invariants(driver, &network);
            // 6. Delta reporting: the delta must bracket the station's
            //    own journal exactly, round after round.
            assert_eq!(
                delta.changed,
                network.station().changed_since(before),
                "{driver}: a round delta must name exactly the journalled dirty set"
            );
            assert_eq!(
                delta.revision,
                network.station().revision(),
                "{driver}: a round delta must carry the post-round revision"
            );
            if delta.changed.is_empty() {
                assert_eq!(
                    delta.revision, before,
                    "{driver}: an empty delta must leave the revision untouched"
                );
            }
            delivered += delta.delivered;
            deltas.push(delta);
        }
        (
            network.station().clone(),
            network.meter().snapshot(),
            delivered,
            deltas,
        )
    };

    // 1. Seed determinism: two builds, two runs, byte-identical outcome.
    let (clean_station, clean_cost, clean_delivered, clean_deltas) =
        run_schedule(None, &CANONICAL_SCHEDULE);
    let (repeat_station, repeat_cost, repeat_delivered, repeat_deltas) =
        run_schedule(None, &CANONICAL_SCHEDULE);
    assert_eq!(
        station_fingerprint(&clean_station),
        station_fingerprint(&repeat_station),
        "{driver}: identical construction must give a byte-identical station"
    );
    assert_eq!(
        clean_station, repeat_station,
        "{driver}: identical construction must give an equal station"
    );
    assert_eq!(
        clean_cost, repeat_cost,
        "{driver}: identical construction must give identical costs"
    );
    assert_eq!(
        clean_delivered, repeat_delivered,
        "{driver}: identical construction must deliver identical counts"
    );
    assert_eq!(
        clean_delivered,
        clean_station.total_samples(),
        "{driver}: with no failures, everything delivered must be held"
    );
    assert_eq!(
        clean_deltas, repeat_deltas,
        "{driver}: identical construction must report identical deltas"
    );
    let all_nodes: Vec<NodeId> = (0..CANONICAL_NODES as u32).map(NodeId).collect();
    match clean_deltas.as_slice() {
        [first_round, _, repeat_round, raised_round] => {
            assert_eq!(
                first_round.changed, all_nodes,
                "{driver}: the first clean round must report every node changed"
            );
            assert!(
                repeat_round.changed.is_empty() && repeat_round.delivered == 0,
                "{driver}: the repeated target must report an empty delta"
            );
            assert_eq!(
                raised_round.changed, all_nodes,
                "{driver}: a raised target must report every lagging node changed"
            );
        }
        other => assert_eq!(
            other.len(),
            4,
            "{driver}: the canonical schedule must produce one delta per round"
        ),
    }

    // 2. Monotone top-up semantics.
    let mut network = build(canonical_partitions(), CANONICAL_SEED);
    assert!(
        network.top_up(0.5).is_some(),
        "{driver}: a lagging station must trigger collection"
    );
    assert_eq!(
        network.station().effective_probability(),
        0.5,
        "{driver}: top-up must reach exactly the target probability"
    );
    let held = network.station().total_samples();
    assert!(
        network.top_up(0.3).is_none(),
        "{driver}: a satisfied target must not trigger collection"
    );
    assert_eq!(
        network.collect_samples(0.3),
        0,
        "{driver}: a round below the reached probability must move nothing"
    );
    assert_eq!(
        network.station().total_samples(),
        held,
        "{driver}: non-lagging rounds must not change the sample set"
    );
    assert!(
        network.top_up(0.9).is_some(),
        "{driver}: raising the target must top the station up again"
    );
    assert_eq!(network.station().effective_probability(), 0.9);
    assert!(
        network.station().total_samples() >= held,
        "{driver}: top-up must never discard samples"
    );
    assert_cost_invariants(driver, &network);

    // 3. Basic shape: every driver reports the same population layout
    //    and un-metered ground truth.
    assert_eq!(
        network.node_count(),
        CANONICAL_NODES,
        "{driver}: node count"
    );
    assert_eq!(
        network.total_data_size(),
        CANONICAL_NODES * CANONICAL_PER_NODE,
        "{driver}: total data size"
    );
    let exact_all = network.exact_range_count(f64::MIN, f64::MAX);
    assert_eq!(
        exact_all,
        CANONICAL_NODES * CANONICAL_PER_NODE,
        "{driver}: exact count over the full support must match the population"
    );

    // 4a. Dead nodes stay silent.
    let mut dead_plan = FailurePlan::none();
    dead_plan.kill_node(NodeId(5));
    dead_plan.kill_node(NodeId(6));
    let (dead_station, _, dead_delivered, dead_deltas) =
        run_schedule(Some(dead_plan), &CANONICAL_SCHEDULE);
    assert!(
        dead_deltas
            .iter()
            .all(|d| !d.changed.contains(&NodeId(5)) && !d.changed.contains(&NodeId(6))),
        "{driver}: dead nodes must never appear in a round delta"
    );
    assert_eq!(
        dead_station.node_count(),
        CANONICAL_NODES - 2,
        "{driver}: dead nodes must never register with the station"
    );
    assert!(
        dead_station.node_sample(NodeId(5)).is_none()
            && dead_station.node_sample(NodeId(6)).is_none(),
        "{driver}: the killed nodes specifically must be absent"
    );
    assert_eq!(
        dead_station.total_population(),
        (CANONICAL_NODES - 2) * CANONICAL_PER_NODE,
        "{driver}: population must cover exactly the surviving nodes"
    );
    assert_eq!(
        dead_delivered,
        dead_station.total_samples(),
        "{driver}: deliveries under dropout must all be held"
    );

    // 4b. Retransmit loses nothing but costs messages.
    let retransmit_plan = FailurePlan::new(0.0, 0.4, LossMode::Retransmit, CANONICAL_FAILURE_SEED);
    let (retry_station, retry_cost, _, _) =
        run_schedule(Some(retransmit_plan), &CANONICAL_SCHEDULE);
    assert_eq!(
        station_fingerprint(&retry_station),
        station_fingerprint(&clean_station),
        "{driver}: retransmission must never change the data"
    );
    assert!(
        retry_cost.messages > clean_cost.messages,
        "{driver}: retransmission must cost extra messages"
    );
    assert_eq!(
        retry_cost.lost_messages, 0,
        "{driver}: retransmit mode never loses a message permanently"
    );

    // 4c. Drop under-delivers but still registers population.
    let drop_plan = FailurePlan::new(0.0, 0.4, LossMode::Drop, CANONICAL_FAILURE_SEED);
    let (drop_station, drop_cost, _, _) = run_schedule(Some(drop_plan), &CANONICAL_SCHEDULE);
    assert!(
        drop_cost.lost_messages > 0,
        "{driver}: the canonical Drop scenario must actually lose batches"
    );
    assert!(
        drop_station.total_samples() < clean_station.total_samples(),
        "{driver}: dropped batches must leave the station under-sampled"
    );
    assert_eq!(
        drop_station.node_count(),
        CANONICAL_NODES,
        "{driver}: a node whose batch dropped still registers its population"
    );
    assert_eq!(
        drop_station.total_population(),
        CANONICAL_NODES * CANONICAL_PER_NODE,
        "{driver}: Drop-mode loss must not hide population"
    );

    // 5. Tracer accounting: requests resolve, silence is reported, the
    //    round summary carries the delivered total.
    let mut network = build(canonical_partitions(), CANONICAL_SEED);
    let mut plan = FailurePlan::none();
    plan.kill_node(NodeId(5));
    network.set_failure_plan(plan);
    let tracer = Tracer::new(256);
    network.set_tracer(tracer.clone());
    let delivered = network.collect_samples(0.5);
    let counts = tracer.counts_by_kind();
    assert_eq!(
        counts.get("node_silent").copied().unwrap_or(0),
        1,
        "{driver}: one dead node must be traced silent"
    );
    assert_eq!(
        counts.get("top_up_requested").copied().unwrap_or(0),
        CANONICAL_NODES - 1,
        "{driver}: every live lagging node must be asked to top up"
    );
    let resolved = counts.get("batch_delivered").copied().unwrap_or(0)
        + counts.get("batch_lost").copied().unwrap_or(0);
    assert_eq!(
        resolved,
        CANONICAL_NODES - 1,
        "{driver}: every request must resolve to a delivery or a loss"
    );
    assert_eq!(
        counts.get("round_completed").copied().unwrap_or(0),
        1,
        "{driver}: exactly one round summary per round"
    );
    let summary_delivered: Vec<usize> = tracer
        .events()
        .iter()
        .filter_map(|event| match event {
            crate::trace::TraceEvent::RoundCompleted { delivered, .. } => Some(*delivered),
            _ => None,
        })
        .collect();
    assert_eq!(
        summary_delivered,
        vec![delivered],
        "{driver}: the round summary must carry the delivered total"
    );
    // A second, non-lagging round only adds silence and a summary.
    tracer.clear();
    assert_eq!(network.collect_samples(0.25), 0);
    let counts = tracer.counts_by_kind();
    assert_eq!(
        counts.get("top_up_requested").copied().unwrap_or(0),
        0,
        "{driver}: satisfied nodes must not be re-requested"
    );
    assert_eq!(counts.get("round_completed").copied().unwrap_or(0), 1);

    // 6 (continued). Catch-up deltas: after a lifted failure plan, one
    // round reports exactly the previously-dead nodes — the partial
    // delta an incremental index consumes without a full rebuild.
    let mut network = build(canonical_partitions(), CANONICAL_SEED);
    let mut plan = FailurePlan::none();
    plan.kill_node(NodeId(3));
    plan.kill_node(NodeId(4));
    network.set_failure_plan(plan);
    let first = network.collect_delta(0.5);
    assert_eq!(
        first.changed,
        vec![NodeId(0), NodeId(1), NodeId(2), NodeId(5), NodeId(6)],
        "{driver}: the first round under dropout must report exactly the live nodes"
    );
    network.set_failure_plan(FailurePlan::none());
    let catch_up = network.collect_delta(0.5);
    assert_eq!(
        catch_up.changed,
        vec![NodeId(3), NodeId(4)],
        "{driver}: a catch-up round must report exactly the revived nodes"
    );
    assert!(
        catch_up.revision > first.revision,
        "{driver}: a catch-up round must advance the revision"
    );
    let idle = network.collect_delta(0.5);
    assert_eq!(
        idle,
        RoundDelta {
            delivered: 0,
            changed: Vec::new(),
            revision: catch_up.revision,
        },
        "{driver}: a redundant round must report an empty delta at the same revision"
    );

    // The shared failure scenario, for cross-driver comparison.
    let (failure_station, failure_cost, _, failure_deltas) =
        run_schedule(Some(canonical_failure_plan()), &[0.4, 0.8]);

    ConformanceReport {
        driver: driver.to_string(),
        clean_station,
        clean_cost,
        failure_station,
        failure_cost,
        clean_deltas,
        failure_deltas,
    }
}

/// The cross-driver half of the contract: every report must hold
/// byte-identical station state on the clean scenario *and* under the
/// shared failure plan, and agree on sample counts (costs may differ —
/// the tree driver legitimately pays per hop).
///
/// # Panics
///
/// Panics when any two drivers disagree.
pub fn assert_drivers_agree(reports: &[ConformanceReport]) {
    let Some(first) = reports.first() else {
        return;
    };
    for other in reports.iter().skip(1) {
        assert_eq!(
            station_fingerprint(&first.clean_station),
            station_fingerprint(&other.clean_station),
            "{} vs {}: clean station state must be byte-identical",
            first.driver,
            other.driver
        );
        assert_eq!(
            station_fingerprint(&first.failure_station),
            station_fingerprint(&other.failure_station),
            "{} vs {}: station state under one failure plan must be byte-identical",
            first.driver,
            other.driver
        );
        assert_eq!(
            first.clean_cost.samples, other.clean_cost.samples,
            "{} vs {}: drivers must ship the same number of samples",
            first.driver, other.driver
        );
        assert_eq!(
            first.failure_cost.samples, other.failure_cost.samples,
            "{} vs {}: drivers must lose the same samples under one plan",
            first.driver, other.driver
        );
        assert_eq!(
            first.failure_cost.lost_messages, other.failure_cost.lost_messages,
            "{} vs {}: drivers must lose the same messages under one plan",
            first.driver, other.driver
        );
        assert_eq!(
            first.clean_deltas, other.clean_deltas,
            "{} vs {}: clean round deltas must be byte-identical",
            first.driver, other.driver
        );
        assert_eq!(
            first.failure_deltas, other.failure_deltas,
            "{} vs {}: round deltas under one failure plan must be byte-identical",
            first.driver, other.driver
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprint_distinguishes_sample_states() {
        let mut a = crate::network::FlatNetwork::from_partitions(canonical_partitions(), 1);
        let mut b = crate::network::FlatNetwork::from_partitions(canonical_partitions(), 2);
        a.collect_samples(0.5);
        b.collect_samples(0.5);
        assert_ne!(
            station_fingerprint(a.station()),
            station_fingerprint(b.station()),
            "different seeds must fingerprint differently"
        );
        let mut a2 = crate::network::FlatNetwork::from_partitions(canonical_partitions(), 1);
        a2.collect_samples(0.5);
        assert_eq!(
            station_fingerprint(a.station()),
            station_fingerprint(a2.station())
        );
    }

    #[test]
    fn empty_report_list_is_trivially_consistent() {
        assert_drivers_agree(&[]);
    }
}
