//! Network drivers and communication-cost accounting.
//!
//! [`FlatNetwork`] implements the paper's flat model — every node talks
//! directly to the base station — with a deterministic, single-threaded
//! round protocol. [`ThreadedNetwork`] runs the same protocol with its
//! per-node sampling fanned out over the shared [`prc_runtime::Runtime`]
//! pool, producing byte-identical sample state for the same seed
//! (per-node RNGs make the outcome independent of scheduling). Both
//! drivers meter traffic through a shared [`CostMeter`].

use std::sync::Arc;

use parking_lot::Mutex;
use prc_data::partition::{partition_values, PartitionStrategy};
use prc_data::record::{AirQualityIndex, Dataset};
use prc_runtime::{CutoffPolicy, Runtime};

use crate::base_station::BaseStation;
use crate::failure::{FailurePlan, LossMode};
use crate::message::{Message, NodeId, SampleMessage};
use crate::node::SensorNode;
use crate::trace::{TraceEvent, Tracer};

/// Aggregate communication counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct CostSnapshot {
    /// Total messages transmitted (including retransmissions and hops).
    pub messages: u64,
    /// Messages that piggybacked on routine traffic (heartbeat rule).
    pub free_messages: u64,
    /// Total sample entries shipped.
    pub samples: u64,
    /// Total payload bytes transmitted.
    pub bytes: u64,
    /// Messages permanently lost (only under `LossMode::Drop`).
    pub lost_messages: u64,
}

impl CostSnapshot {
    /// Messages that incurred real cost (not piggybacked).
    pub fn chargeable_messages(&self) -> u64 {
        self.messages - self.free_messages
    }
}

/// A thread-safe communication cost meter.
///
/// Cloning produces a handle to the same underlying counters. In
/// addition to the aggregate [`CostSnapshot`], the meter tracks bytes
/// transmitted *per node*, which the energy model
/// ([`crate::energy`]) turns into per-node battery drain.
#[derive(Debug, Clone, Default)]
pub struct CostMeter {
    inner: Arc<Mutex<MeterState>>,
}

#[derive(Debug, Default)]
struct MeterState {
    totals: CostSnapshot,
    per_node_bytes: std::collections::BTreeMap<NodeId, u64>,
}

impl CostMeter {
    /// Creates a meter with zeroed counters.
    pub fn new() -> Self {
        CostMeter::default()
    }

    /// Records one delivered message that crossed `hops` links and needed
    /// `attempts` transmissions per link.
    ///
    /// Per-node accounting attributes the full (hop-multiplied) byte cost
    /// to the originating node, matching the convention that relaying
    /// energy is billed to the flow that caused it.
    pub fn record(&self, message: &Message, hops: u32, attempts: u32) {
        let mut inner = self.inner.lock();
        let transmissions = u64::from(hops) * u64::from(attempts);
        inner.totals.messages += transmissions;
        if message.is_free() {
            inner.totals.free_messages += transmissions;
        }
        let bytes = message.wire_size() as u64 * transmissions;
        inner.totals.bytes += bytes;
        *inner.per_node_bytes.entry(message.node_id()).or_insert(0) += bytes;
        if let Message::Sample(m) = message {
            inner.totals.samples += m.entries.len() as u64;
        }
    }

    /// Records a permanently lost message (its transmission still cost bytes).
    pub fn record_lost(&self, message: &Message) {
        let mut inner = self.inner.lock();
        inner.totals.messages += 1;
        inner.totals.lost_messages += 1;
        let bytes = message.wire_size() as u64;
        inner.totals.bytes += bytes;
        *inner.per_node_bytes.entry(message.node_id()).or_insert(0) += bytes;
    }

    /// Current counter values.
    pub fn snapshot(&self) -> CostSnapshot {
        self.inner.lock().totals
    }

    /// Bytes attributed to each node so far.
    pub fn per_node_bytes(&self) -> std::collections::BTreeMap<NodeId, u64> {
        self.inner.lock().per_node_bytes.clone()
    }

    /// Resets all counters to zero.
    pub fn reset(&self) {
        *self.inner.lock() = MeterState::default();
    }
}

/// What one collection round changed, as seen through the delta
/// contract (§12 of DESIGN.md).
///
/// A round's delta is *derived from the station's revision journal*
/// ([`BaseStation::changed_since`]), not from driver-internal
/// bookkeeping: every driver mutates station state exclusively through
/// [`BaseStation::ingest`], so for byte-identical rounds every driver
/// reports byte-identical deltas. The conformance kit
/// ([`crate::conformance`]) pins this across flat/threaded/tree.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct RoundDelta {
    /// Sample entries delivered to the station this round.
    pub delivered: usize,
    /// Nodes whose station record changed this round, in node-id order.
    /// Empty for a round in which every message was lost or redundant.
    pub changed: Vec<NodeId>,
    /// The station revision after the round; consumers store this and
    /// pass it back to [`BaseStation::changed_since`] to resynchronise
    /// incrementally.
    pub revision: u64,
}

/// A driver-agnostic view of a sampling network.
///
/// All three drivers — [`FlatNetwork`] (single-threaded, one synchronous
/// round per collection), [`ThreadedNetwork`] (one OS thread per node,
/// channel rounds), and [`crate::tree::TreeNetwork`] (balanced d-ary
/// aggregation tree, hop-multiplied costs) — expose the same protocol
/// surface: a population distributed over `k` nodes, a base station
/// accumulating Bernoulli samples, and a [`CostMeter`] charging every
/// message. Generic consumers — most importantly the broker in
/// `prc-core` — are written against this trait so the same pipeline runs
/// unchanged over any driver.
///
/// Implementations must be *deterministic in the seed*: for identical
/// construction parameters, the station state after any sequence of
/// [`Network::collect_samples`] calls must not depend on scheduling —
/// and for one shared [`FailurePlan`] seed, every driver must see the
/// same per-node failures. The executable form of this contract lives in
/// [`crate::conformance`]; `tests/driver_conformance.rs` runs it against
/// every driver.
pub trait Network {
    /// Number of nodes (dead or alive).
    fn node_count(&self) -> usize;

    /// Total data elements across all nodes, `n = |D|`.
    fn total_data_size(&self) -> usize;

    /// The base station's view of collected samples.
    fn station(&self) -> &BaseStation;

    /// The cost meter charging this network's traffic.
    fn meter(&self) -> &CostMeter;

    /// Installs a failure plan (replacing any previous plan); subsequent
    /// rounds consult it for node dropout and message loss.
    fn set_failure_plan(&mut self, plan: FailurePlan);

    /// Attaches an event tracer; subsequent rounds emit
    /// [`crate::trace::TraceEvent`]s into it.
    fn set_tracer(&mut self, tracer: Tracer);

    /// Exact global range count `γ(l, u, D)` — ground truth for
    /// evaluation. Computed out of band (not metered, unaffected by
    /// failure plans): evaluation harnesses need the truth even when the
    /// simulated radios are lossy.
    fn exact_range_count(&self, l: f64, u: f64) -> usize;

    /// Runs one collection round: every live node raises its cumulative
    /// sampling probability to `target` and ships the new batch. Returns
    /// the number of sample entries that reached the base station.
    fn collect_samples(&mut self, target: f64) -> usize;

    /// The collection-stage hook: tops the station up to `target` when
    /// its effective probability lags, returning `Some(delivered)` for a
    /// round that actually ran and `None` when the existing sample
    /// already suffices. Consumers (the broker's Collect stage) treat a
    /// `Some` as the start of a new collection epoch.
    fn top_up(&mut self, target: f64) -> Option<usize> {
        if self.station().effective_probability() < target {
            Some(self.collect_samples(target.clamp(f64::MIN_POSITIVE, 1.0)))
        } else {
            None
        }
    }

    /// Runs one collection round and reports its [`RoundDelta`]: the
    /// exact set of nodes whose station record changed, instead of
    /// forcing the consumer to treat the whole station as dirty.
    ///
    /// Provided for every driver by bracketing
    /// [`Network::collect_samples`] with the station's revision journal;
    /// drivers must not override this with driver-local bookkeeping (the
    /// journal is what keeps flat/threaded/tree deltas byte-identical).
    fn collect_delta(&mut self, target: f64) -> RoundDelta {
        let before = self.station().revision();
        let delivered = self.collect_samples(target);
        let station = self.station();
        RoundDelta {
            delivered,
            changed: station.changed_since(before),
            revision: station.revision(),
        }
    }

    /// The delta-reporting form of [`Network::top_up`]: `Some(delta)`
    /// for a round that actually ran, `None` when the existing sample
    /// already meets `target`.
    fn top_up_delta(&mut self, target: f64) -> Option<RoundDelta> {
        if self.station().effective_probability() < target {
            Some(self.collect_delta(target.clamp(f64::MIN_POSITIVE, 1.0)))
        } else {
            None
        }
    }
}

/// The paper's flat network: `k` sensor nodes reporting directly to one
/// base station.
#[derive(Debug)]
pub struct FlatNetwork {
    nodes: Vec<SensorNode>,
    station: BaseStation,
    meter: CostMeter,
    failure: FailurePlan,
    tracer: Option<Tracer>,
}

impl FlatNetwork {
    /// Builds a network with one node per partition.
    ///
    /// # Panics
    ///
    /// Panics if `partitions` is empty.
    pub fn from_partitions(partitions: Vec<Vec<f64>>, seed: u64) -> Self {
        assert!(!partitions.is_empty(), "network needs at least one node");
        let nodes = partitions
            .into_iter()
            .enumerate()
            .map(|(i, data)| SensorNode::new(NodeId(i as u32), data, seed))
            .collect();
        FlatNetwork {
            nodes,
            station: BaseStation::new(),
            meter: CostMeter::new(),
            failure: FailurePlan::none(),
            tracer: None,
        }
    }

    /// Builds a network over one air-quality index of a dataset,
    /// partitioned across `k` nodes.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn from_dataset(
        dataset: &Dataset,
        index: AirQualityIndex,
        k: usize,
        strategy: PartitionStrategy,
        seed: u64,
    ) -> Self {
        let values = dataset.values(index);
        FlatNetwork::from_partitions(partition_values(&values, k, strategy), seed)
    }

    /// Installs a failure plan (replacing any previous plan).
    pub fn set_failure_plan(&mut self, plan: FailurePlan) {
        self.failure = plan;
    }

    /// Attaches an event tracer; subsequent rounds emit [`TraceEvent`]s.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = Some(tracer);
    }

    /// Dynamic membership: adds a node with fresh local data and returns
    /// its id. The node starts unsampled; it catches up at the next
    /// collection round, after which the global estimator automatically
    /// covers the grown population (its `k` and `n` come from the base
    /// station's live state).
    pub fn add_node(&mut self, data: Vec<f64>, seed: u64) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(SensorNode::new(id, data, seed));
        id
    }

    /// Number of nodes (dead or alive).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Total data elements across all nodes, `n = |D|`.
    pub fn total_data_size(&self) -> usize {
        self.nodes.iter().map(SensorNode::population_size).sum()
    }

    /// The base station's view of collected samples.
    pub fn station(&self) -> &BaseStation {
        &self.station
    }

    /// The cost meter.
    pub fn meter(&self) -> &CostMeter {
        &self.meter
    }

    /// Read access to the nodes (ground-truth computations in tests).
    pub fn nodes(&self) -> &[SensorNode] {
        &self.nodes
    }

    /// Exact global range count `γ(l, u, D)` — ground truth for evaluation.
    pub fn exact_range_count(&self, l: f64, u: f64) -> usize {
        self.nodes.iter().map(|n| n.exact_range_count(l, u)).sum()
    }

    /// Runs one collection round: every live node raises its cumulative
    /// sampling probability to `target` and ships the new batch.
    ///
    /// Dead nodes stay silent. Message loss follows the installed
    /// [`FailurePlan`]. Returns the number of sample entries that reached
    /// the base station this round.
    ///
    /// # Panics
    ///
    /// Panics if `target` is not in `(0, 1]`.
    pub fn collect_samples(&mut self, target: f64) -> usize {
        assert!(
            target > 0.0 && target <= 1.0,
            "sampling probability must be in (0, 1], got {target}"
        );
        let mut delivered = 0;
        for node in &mut self.nodes {
            if self.failure.node_is_dead(node.id()) {
                if let Some(tracer) = &self.tracer {
                    tracer.record(TraceEvent::NodeSilent { node: node.id() });
                }
                continue;
            }
            if node.probability() < target {
                let request = Message::TopUpRequest {
                    node_id: node.id(),
                    target_probability: target,
                };
                // Downlink request; retransmitted until heard even in Drop
                // mode (control traffic is acked in any real protocol).
                self.meter.record(&request, 1, 1);
                if let Some(tracer) = &self.tracer {
                    tracer.record(TraceEvent::TopUpRequested {
                        node: node.id(),
                        target,
                    });
                }
            } else {
                continue;
            }
            let batch = node.sample_to(target);
            let message = Message::Sample(batch.clone());
            match self.failure.transmission_attempts(batch.node_id) {
                Some(attempts) => {
                    self.meter.record(&message, 1, attempts);
                    delivered += batch.entries.len();
                    if let Some(tracer) = &self.tracer {
                        tracer.record(TraceEvent::BatchDelivered {
                            node: batch.node_id,
                            entries: batch.entries.len(),
                            attempts,
                        });
                    }
                    self.station.ingest(batch);
                }
                None => {
                    self.meter.record_lost(&message);
                    if let Some(tracer) = &self.tracer {
                        tracer.record(TraceEvent::BatchLost {
                            node: batch.node_id,
                            entries: batch.entries.len(),
                        });
                    }
                    // LossMode::Drop: record that the node reported (so the
                    // station knows its population and probability claim)
                    // but without the lost entries.
                    if self.failure.loss_mode() == LossMode::Drop {
                        self.station.ingest(SampleMessage {
                            entries: Vec::new(),
                            ..batch
                        });
                    }
                }
            }
        }
        if let Some(tracer) = &self.tracer {
            let round = tracer.next_round();
            tracer.record(TraceEvent::RoundCompleted {
                round,
                target,
                delivered,
            });
        }
        delivered
    }
}

impl Network for FlatNetwork {
    fn node_count(&self) -> usize {
        FlatNetwork::node_count(self)
    }

    fn total_data_size(&self) -> usize {
        FlatNetwork::total_data_size(self)
    }

    fn station(&self) -> &BaseStation {
        FlatNetwork::station(self)
    }

    fn meter(&self) -> &CostMeter {
        FlatNetwork::meter(self)
    }

    fn collect_samples(&mut self, target: f64) -> usize {
        FlatNetwork::collect_samples(self, target)
    }

    fn set_failure_plan(&mut self, plan: FailurePlan) {
        FlatNetwork::set_failure_plan(self, plan);
    }

    fn set_tracer(&mut self, tracer: Tracer) {
        FlatNetwork::set_tracer(self, tracer);
    }

    fn exact_range_count(&self, l: f64, u: f64) -> usize {
        FlatNetwork::exact_range_count(self, l, u)
    }
}

/// A threaded driver: per-node sampling fanned out over the shared
/// [`prc_runtime::Runtime`] pool, and the same deterministic per-node
/// sampling as [`FlatNetwork`].
///
/// For the same construction parameters, the base-station state after
/// [`ThreadedNetwork::collect_samples`] is identical to the flat driver's
/// (each node owns an independent RNG seeded from the shared seed and the
/// node id, so pool scheduling cannot change what is sampled). The same
/// holds under a [`FailurePlan`]: nodes sample concurrently, but failure
/// decisions are keyed by `NodeId` and applied by the coordinator in
/// node-id order, so dropout, loss, metering, and tracing replay the
/// flat protocol exactly.
#[derive(Debug)]
pub struct ThreadedNetwork {
    nodes: Vec<SensorNode>,
    station: BaseStation,
    meter: CostMeter,
    failure: FailurePlan,
    tracer: Option<Tracer>,
}

/// Network rounds always amortize their fan-out (per-node sampling and
/// counting dwarf dispatch); a single-worker pool still degrades to the
/// caller-side sequential path with identical bytes.
const NET_CUTOFF: CutoffPolicy = CutoffPolicy::always_parallel();

impl ThreadedNetwork {
    /// Builds a network with one node per partition.
    ///
    /// # Panics
    ///
    /// Panics if `partitions` is empty.
    pub fn from_partitions(partitions: Vec<Vec<f64>>, seed: u64) -> Self {
        assert!(!partitions.is_empty(), "network needs at least one node");
        let nodes = partitions
            .into_iter()
            .enumerate()
            .map(|(i, data)| SensorNode::new(NodeId(i as u32), data, seed))
            .collect();
        ThreadedNetwork {
            nodes,
            station: BaseStation::new(),
            meter: CostMeter::new(),
            failure: FailurePlan::none(),
            tracer: None,
        }
    }

    /// Installs a failure plan (replacing any previous plan).
    pub fn set_failure_plan(&mut self, plan: FailurePlan) {
        self.failure = plan;
    }

    /// Attaches an event tracer; subsequent rounds emit [`TraceEvent`]s.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = Some(tracer);
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Total data elements across all nodes.
    pub fn total_data_size(&self) -> usize {
        self.nodes.iter().map(SensorNode::population_size).sum()
    }

    /// The base station's view of collected samples.
    pub fn station(&self) -> &BaseStation {
        &self.station
    }

    /// The cost meter.
    pub fn meter(&self) -> &CostMeter {
        &self.meter
    }

    /// Exact global range count `γ(l, u, D)` — ground truth for
    /// evaluation, summed over pool workers and not metered.
    ///
    /// # Panics
    ///
    /// Only to propagate a pool worker's panic, re-raised through the
    /// runtime's single panic path ([`Runtime::map_chunked`]).
    pub fn exact_range_count(&self, l: f64, u: f64) -> usize {
        Runtime::global()
            .map_chunked(&self.nodes, self.nodes.len(), NET_CUTOFF, |chunk| {
                chunk
                    .items
                    .iter()
                    .map(|node| node.exact_range_count(l, u))
                    .sum::<usize>()
            })
            .into_iter()
            .sum()
    }

    /// Broadcasts a top-up to `target` and gathers every live node's
    /// batch, replaying the flat driver's failure, metering, and tracing
    /// protocol in node-id order.
    ///
    /// Returns the number of sample entries that reached the base
    /// station this round.
    ///
    /// # Panics
    ///
    /// Panics if `target` is not in `(0, 1]`. Otherwise only to propagate
    /// a pool worker's panic, re-raised through the runtime's single
    /// panic path ([`Runtime::map_chunked_mut`]).
    pub fn collect_samples(&mut self, target: f64) -> usize {
        assert!(
            target > 0.0 && target <= 1.0,
            "sampling probability must be in (0, 1], got {target}"
        );
        // Fan out: dead nodes are never contacted; live nodes top up
        // concurrently over the shared pool. Dropout draws memoize
        // through `&mut FailurePlan`, so they are decided here in id
        // order (matching every other driver) before the fan-out; each
        // node owns its RNG, so what gets sampled is independent of
        // chunking and scheduling.
        let node_count = self.nodes.len();
        let dead: Vec<bool> = (0..node_count)
            .map(|i| self.failure.node_is_dead(NodeId(i as u32)))
            .collect();
        let dead = &dead;
        let batches =
            Runtime::global().map_chunked_mut(&mut self.nodes, node_count, NET_CUTOFF, |chunk| {
                chunk
                    .items
                    .iter_mut()
                    .filter(|node| !dead[node.id().0 as usize])
                    .map(|node| {
                        let lagged = node.probability() < target;
                        (lagged, node.sample_to(target))
                    })
                    .collect::<Vec<_>>()
            });
        // Gather: park every live node's batch by id.
        let mut replies: std::collections::BTreeMap<NodeId, (bool, SampleMessage)> = batches
            .into_iter()
            .flatten()
            .map(|(lagged, batch)| (batch.node_id, (lagged, batch)))
            .collect();
        // Settle in node-id order: identical event, metering, and loss
        // sequence to FlatNetwork::collect_samples.
        let mut delivered = 0;
        for i in 0..node_count {
            let id = NodeId(i as u32);
            if self.failure.node_is_dead(id) {
                if let Some(tracer) = &self.tracer {
                    tracer.record(TraceEvent::NodeSilent { node: id });
                }
                continue;
            }
            let Some((lagged, batch)) = replies.remove(&id) else {
                continue;
            };
            if !lagged {
                continue;
            }
            let request = Message::TopUpRequest {
                node_id: id,
                target_probability: target,
            };
            self.meter.record(&request, 1, 1);
            if let Some(tracer) = &self.tracer {
                tracer.record(TraceEvent::TopUpRequested { node: id, target });
            }
            let message = Message::Sample(batch.clone());
            match self.failure.transmission_attempts(id) {
                Some(attempts) => {
                    self.meter.record(&message, 1, attempts);
                    delivered += batch.entries.len();
                    if let Some(tracer) = &self.tracer {
                        tracer.record(TraceEvent::BatchDelivered {
                            node: batch.node_id,
                            entries: batch.entries.len(),
                            attempts,
                        });
                    }
                    self.station.ingest(batch);
                }
                None => {
                    self.meter.record_lost(&message);
                    if let Some(tracer) = &self.tracer {
                        tracer.record(TraceEvent::BatchLost {
                            node: batch.node_id,
                            entries: batch.entries.len(),
                        });
                    }
                    if self.failure.loss_mode() == LossMode::Drop {
                        self.station.ingest(SampleMessage {
                            entries: Vec::new(),
                            ..batch
                        });
                    }
                }
            }
        }
        if let Some(tracer) = &self.tracer {
            let round = tracer.next_round();
            tracer.record(TraceEvent::RoundCompleted {
                round,
                target,
                delivered,
            });
        }
        delivered
    }
}

impl Network for ThreadedNetwork {
    fn node_count(&self) -> usize {
        ThreadedNetwork::node_count(self)
    }

    fn total_data_size(&self) -> usize {
        ThreadedNetwork::total_data_size(self)
    }

    fn station(&self) -> &BaseStation {
        ThreadedNetwork::station(self)
    }

    fn meter(&self) -> &CostMeter {
        ThreadedNetwork::meter(self)
    }

    fn collect_samples(&mut self, target: f64) -> usize {
        ThreadedNetwork::collect_samples(self, target)
    }

    fn set_failure_plan(&mut self, plan: FailurePlan) {
        ThreadedNetwork::set_failure_plan(self, plan);
    }

    fn set_tracer(&mut self, tracer: Tracer) {
        ThreadedNetwork::set_tracer(self, tracer);
    }

    fn exact_range_count(&self, l: f64, u: f64) -> usize {
        ThreadedNetwork::exact_range_count(self, l, u)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::failure::LossMode;

    fn partitions(k: usize, per_node: usize) -> Vec<Vec<f64>> {
        (0..k)
            .map(|i| (0..per_node).map(|j| (i * per_node + j) as f64).collect())
            .collect()
    }

    #[test]
    fn flat_network_collects_from_all_nodes() {
        let mut net = FlatNetwork::from_partitions(partitions(4, 100), 7);
        assert_eq!(net.node_count(), 4);
        assert_eq!(net.total_data_size(), 400);
        let delivered = net.collect_samples(0.5);
        assert!(delivered > 0);
        assert_eq!(net.station().node_count(), 4);
        assert_eq!(net.station().total_population(), 400);
        assert_eq!(net.station().effective_probability(), 0.5);
        assert_eq!(net.station().total_samples(), delivered);
    }

    #[test]
    fn top_up_rounds_accumulate() {
        let mut net = FlatNetwork::from_partitions(partitions(2, 1_000), 3);
        let first = net.collect_samples(0.1);
        let second = net.collect_samples(0.4);
        assert_eq!(net.station().total_samples(), first + second);
        assert_eq!(net.station().effective_probability(), 0.4);
        // Re-collecting at a lower probability moves nothing.
        let third = net.collect_samples(0.2);
        assert_eq!(third, 0);
    }

    #[test]
    fn meter_counts_messages_and_bytes() {
        let mut net = FlatNetwork::from_partitions(partitions(3, 200), 5);
        net.collect_samples(0.3);
        let cost = net.meter().snapshot();
        // 3 top-up requests + 3 sample messages minimum.
        assert!(cost.messages >= 6);
        assert!(cost.bytes > 0);
        assert_eq!(cost.samples, net.station().total_samples() as u64);
        net.meter().reset();
        assert_eq!(net.meter().snapshot(), CostSnapshot::default());
    }

    #[test]
    fn heartbeat_rule_marks_small_batches_free() {
        // Tiny sampling probability => tiny batches => free messages.
        let mut net = FlatNetwork::from_partitions(partitions(2, 50), 5);
        net.collect_samples(0.05);
        let cost = net.meter().snapshot();
        assert!(cost.free_messages > 0);
    }

    #[test]
    fn exact_count_sums_over_nodes() {
        let net = FlatNetwork::from_partitions(vec![vec![1.0, 2.0], vec![2.0, 3.0]], 0);
        assert_eq!(net.exact_range_count(2.0, 3.0), 3);
        assert_eq!(net.exact_range_count(0.0, 0.5), 0);
    }

    #[test]
    fn dead_nodes_stay_silent() {
        let mut net = FlatNetwork::from_partitions(partitions(4, 100), 9);
        let mut plan = FailurePlan::none();
        plan.kill_node(NodeId(0));
        plan.kill_node(NodeId(2));
        net.set_failure_plan(plan);
        net.collect_samples(0.5);
        assert_eq!(net.station().node_count(), 2);
        assert_eq!(net.station().total_population(), 200);
    }

    #[test]
    fn drop_mode_loses_batches_but_records_population() {
        let mut net = FlatNetwork::from_partitions(partitions(50, 100), 1);
        net.set_failure_plan(FailurePlan::new(0.0, 0.5, LossMode::Drop, 2));
        net.collect_samples(0.5);
        let cost = net.meter().snapshot();
        assert!(cost.lost_messages > 0, "expected losses at 50%");
        // Every node still registered (empty batches count the population).
        assert_eq!(net.station().node_count(), 50);
        // But fewer samples arrived than were sent.
        assert!((net.station().total_samples() as u64) < cost.samples + 2_000);
    }

    #[test]
    fn retransmit_mode_costs_more_but_loses_nothing() {
        let mk = |loss: f64, seed| {
            let mut net = FlatNetwork::from_partitions(partitions(5, 500), seed);
            if loss > 0.0 {
                net.set_failure_plan(FailurePlan::new(0.0, loss, LossMode::Retransmit, 4));
            }
            net.collect_samples(0.4);
            (
                net.meter().snapshot().messages,
                net.station().total_samples(),
            )
        };
        let (clean_msgs, clean_samples) = mk(0.0, 21);
        let (lossy_msgs, lossy_samples) = mk(0.4, 21);
        assert_eq!(
            clean_samples, lossy_samples,
            "retransmit must not lose data"
        );
        assert!(
            lossy_msgs > clean_msgs,
            "retransmissions must cost messages"
        );
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn empty_network_panics() {
        let _ = FlatNetwork::from_partitions(vec![], 0);
    }

    #[test]
    fn dynamic_membership_catches_up_on_the_next_round() {
        let mut net = FlatNetwork::from_partitions(partitions(3, 200), 5);
        net.collect_samples(0.4);
        assert_eq!(net.station().node_count(), 3);
        assert_eq!(net.station().effective_probability(), 0.4);

        // A new device joins with fresh data.
        let id = net.add_node((600..800).map(f64::from).collect(), 5);
        assert_eq!(id, NodeId(3));
        assert_eq!(net.node_count(), 4);
        assert_eq!(net.total_data_size(), 800);
        // The station lags until the next round…
        assert_eq!(net.station().node_count(), 3);
        // …then the newcomer catches up to the same cumulative p.
        net.collect_samples(0.4);
        assert_eq!(net.station().node_count(), 4);
        assert_eq!(net.station().effective_probability(), 0.4);
        assert_eq!(net.station().total_population(), 800);
    }

    #[test]
    fn tracer_observes_a_round() {
        use crate::trace::{TraceEvent, Tracer};
        let mut net = FlatNetwork::from_partitions(partitions(3, 100), 9);
        let mut plan = FailurePlan::none();
        plan.kill_node(NodeId(1));
        net.set_failure_plan(plan);
        let tracer = Tracer::new(64);
        net.set_tracer(tracer.clone());
        let delivered = net.collect_samples(0.3);

        let counts = tracer.counts_by_kind();
        assert_eq!(counts["node_silent"], 1);
        assert_eq!(counts["top_up_requested"], 2);
        assert_eq!(counts["batch_delivered"], 2);
        assert_eq!(counts["round_completed"], 1);
        // The round summary carries the delivered total.
        let last = tracer.events().pop().unwrap();
        match last {
            TraceEvent::RoundCompleted {
                round,
                target,
                delivered: d,
            } => {
                assert_eq!(round, 0);
                assert_eq!(target, 0.3);
                assert_eq!(d, delivered);
            }
            other => panic!("unexpected final event {other:?}"),
        }
        // A second, lower-target round only emits silence + summary.
        tracer.clear();
        net.collect_samples(0.1);
        let counts = tracer.counts_by_kind();
        assert_eq!(counts.get("batch_delivered"), None);
        assert_eq!(counts["round_completed"], 1);
    }

    #[test]
    fn threaded_matches_flat_exactly() {
        let parts = partitions(8, 400);
        let mut flat = FlatNetwork::from_partitions(parts.clone(), 77);
        flat.collect_samples(0.25);
        flat.collect_samples(0.6);

        let mut threaded = ThreadedNetwork::from_partitions(parts, 77);
        threaded.collect_samples(0.25);
        threaded.collect_samples(0.6);

        assert_eq!(flat.station(), threaded.station());
        assert_eq!(threaded.node_count(), 8);
        assert_eq!(threaded.total_data_size(), 3_200);
    }

    #[test]
    fn threaded_meter_counts() {
        let mut net = ThreadedNetwork::from_partitions(partitions(3, 100), 1);
        let delivered = net.collect_samples(0.5);
        let cost = net.meter().snapshot();
        assert_eq!(cost.samples, delivered as u64);
        assert_eq!(cost.messages, 6); // 3 requests + 3 batches
    }

    #[test]
    #[should_panic(expected = "must be in (0, 1]")]
    fn threaded_rejects_bad_probability() {
        let mut net = ThreadedNetwork::from_partitions(partitions(1, 10), 1);
        net.collect_samples(0.0);
    }

    #[test]
    #[should_panic(expected = "must be in (0, 1]")]
    fn flat_rejects_bad_probability() {
        let mut net = FlatNetwork::from_partitions(partitions(1, 10), 1);
        net.collect_samples(1.5);
    }

    #[test]
    fn threaded_matches_flat_under_the_same_failure_plan() {
        // Satellite regression for the old parity gap: the threaded
        // driver used to silently ignore FailurePlan and Tracer.
        let parts = partitions(10, 300);
        let mk_plan = || {
            let mut plan = FailurePlan::new(0.2, 0.3, LossMode::Drop, 31);
            plan.kill_node(NodeId(4));
            plan
        };

        let mut flat = FlatNetwork::from_partitions(parts.clone(), 55);
        flat.set_failure_plan(mk_plan());
        let flat_tracer = crate::trace::Tracer::new(256);
        flat.set_tracer(flat_tracer.clone());
        flat.collect_samples(0.3);
        flat.collect_samples(0.7);

        let mut threaded = ThreadedNetwork::from_partitions(parts, 55);
        threaded.set_failure_plan(mk_plan());
        let threaded_tracer = crate::trace::Tracer::new(256);
        threaded.set_tracer(threaded_tracer.clone());
        threaded.collect_samples(0.3);
        threaded.collect_samples(0.7);

        assert_eq!(
            flat.station(),
            threaded.station(),
            "station state must be identical under one failure plan"
        );
        assert_eq!(flat.meter().snapshot(), threaded.meter().snapshot());
        assert_eq!(
            flat.meter().per_node_bytes(),
            threaded.meter().per_node_bytes()
        );
        assert_eq!(
            flat_tracer.events(),
            threaded_tracer.events(),
            "the two drivers must emit the same event sequence"
        );
    }

    #[test]
    fn threaded_exact_count_matches_flat() {
        let parts = partitions(6, 150);
        let flat = FlatNetwork::from_partitions(parts.clone(), 3);
        let threaded = ThreadedNetwork::from_partitions(parts, 3);
        assert_eq!(
            flat.exact_range_count(100.0, 550.0),
            threaded.exact_range_count(100.0, 550.0)
        );
        assert_eq!(threaded.exact_range_count(0.0, 1e9), 900);
        // Ground truth is not metered.
        assert_eq!(threaded.meter().snapshot(), CostSnapshot::default());
    }

    #[test]
    fn threaded_repeat_rounds_meter_like_flat() {
        // A round below the reached probability must move (and charge)
        // nothing — the old driver charged every node every round.
        let parts = partitions(4, 100);
        let mut flat = FlatNetwork::from_partitions(parts.clone(), 8);
        let mut threaded = ThreadedNetwork::from_partitions(parts, 8);
        flat.collect_samples(0.6);
        threaded.collect_samples(0.6);
        assert_eq!(flat.collect_samples(0.2), 0);
        assert_eq!(threaded.collect_samples(0.2), 0);
        assert_eq!(flat.meter().snapshot(), threaded.meter().snapshot());
    }
}
