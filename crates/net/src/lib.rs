//! # prc-net — IoT network simulation substrate
//!
//! The system model of *"Trading Private Range Counting over Big IoT
//! Data"* (Cai & He, ICDCS 2019) distributes a global dataset `D` over `k`
//! smart devices; each device ships only a Bernoulli(p) *sample* of its
//! local data — together with each sampled element's **local rank** — to a
//! base station, which answers range-counting queries from the collected
//! samples. This crate simulates that network:
//!
//! * [`node`] — [`node::SensorNode`]: sorted local data, Bernoulli
//!   sampling with *incremental top-up* (raising the effective sampling
//!   probability without resampling from scratch, the paper's "collect
//!   more samples" step);
//! * [`message`] — typed wire messages with a byte-level size model and
//!   the §III-A heartbeat piggyback rule (small sample batches ride inside
//!   routine heartbeats for free);
//! * [`base_station`] — per-node sample sets and top-up orchestration;
//! * [`network`] — [`network::FlatNetwork`], the paper's flat model, with
//!   a [`network::CostMeter`] tracking messages/samples/bytes, plus a
//!   a pool-backed [`network::ThreadedNetwork`] driver fanning out over
//!   the shared `prc-runtime` executor; both drivers
//!   implement the [`network::Network`] trait so generic consumers (the
//!   `prc-core` broker) run unchanged over either;
//! * [`tree`] — the "general tree model" extension: samples are forwarded
//!   hop-by-hop to the root, multiplying communication cost by depth; a
//!   full [`network::Network`] driver since the conformance kit landed;
//! * [`failure`] — node-dropout and message-loss injection, keyed by
//!   `NodeId` so every driver sees identical failures for one seed;
//! * [`conformance`] — the executable `Network` contract: a driver-generic
//!   test kit any implementation must pass (see
//!   `tests/driver_conformance.rs` and DESIGN.md §12).
//!
//! ## Quick start
//!
//! ```
//! use prc_net::network::FlatNetwork;
//!
//! // Three nodes, each holding a slice of the global data.
//! let partitions = vec![vec![1.0, 2.0, 3.0], vec![4.0, 5.0], vec![6.0]];
//! let mut network = FlatNetwork::from_partitions(partitions, 42);
//! network.collect_samples(0.5);
//! assert_eq!(network.station().node_count(), 3);
//! assert_eq!(network.station().total_population(), 6);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod base_station;
pub mod conformance;
pub mod energy;
pub mod failure;
pub mod message;
pub mod network;
pub mod node;
pub mod trace;
pub mod tree;

pub use base_station::{BaseStation, NodeSample};
pub use conformance::{assert_drivers_agree, check_driver, ConformanceReport};
pub use message::{Message, NodeId, SampleEntry, SampleMessage};
pub use network::{CostMeter, FlatNetwork, Network, ThreadedNetwork};
pub use node::SensorNode;
pub use tree::TreeNetwork;
