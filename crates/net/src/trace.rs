//! Structured event tracing for network drivers.
//!
//! Production systems need to answer "what did the network actually do
//! last round?" without a debugger. A [`Tracer`] is a bounded, thread-safe
//! ring buffer of [`TraceEvent`]s that every driver
//! ([`crate::network::FlatNetwork`], [`crate::network::ThreadedNetwork`],
//! [`crate::tree::TreeNetwork`]) emits as it runs: per-node requests,
//! deliveries, losses, silent (dead or cut-off) nodes, and a per-round
//! summary. The conformance kit ([`crate::conformance`]) checks that all
//! drivers account events identically.

use std::collections::VecDeque;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::message::NodeId;

/// One traced network event.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
#[non_exhaustive]
pub enum TraceEvent {
    /// A top-up request was sent to a node.
    TopUpRequested {
        /// The addressee.
        node: NodeId,
        /// Cumulative probability the node was asked to reach.
        target: f64,
    },
    /// A sample batch reached the base station.
    BatchDelivered {
        /// The reporting node.
        node: NodeId,
        /// Entries in the batch.
        entries: usize,
        /// Transmission attempts the delivery needed.
        attempts: u32,
    },
    /// A sample batch was permanently lost.
    BatchLost {
        /// The reporting node.
        node: NodeId,
        /// Entries that were lost.
        entries: usize,
    },
    /// A dead node was skipped.
    NodeSilent {
        /// The dead node.
        node: NodeId,
    },
    /// One collection round finished.
    RoundCompleted {
        /// Monotone round counter (starts at 0).
        round: u64,
        /// Probability targeted this round.
        target: f64,
        /// Entries delivered this round.
        delivered: usize,
    },
}

impl TraceEvent {
    /// Short kind label, for aggregation.
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::TopUpRequested { .. } => "top_up_requested",
            TraceEvent::BatchDelivered { .. } => "batch_delivered",
            TraceEvent::BatchLost { .. } => "batch_lost",
            TraceEvent::NodeSilent { .. } => "node_silent",
            TraceEvent::RoundCompleted { .. } => "round_completed",
        }
    }
}

#[derive(Debug)]
struct TracerState {
    events: VecDeque<TraceEvent>,
    capacity: usize,
    dropped: u64,
    rounds: u64,
}

/// A bounded, thread-safe event buffer. Cloning shares the buffer.
///
/// # Examples
///
/// ```
/// use prc_net::network::FlatNetwork;
/// use prc_net::trace::Tracer;
///
/// let mut network = FlatNetwork::from_partitions(vec![vec![1.0, 2.0, 3.0]; 2], 7);
/// let tracer = Tracer::new(128);
/// network.set_tracer(tracer.clone());
/// network.collect_samples(0.9);
/// let counts = tracer.counts_by_kind();
/// assert_eq!(counts["top_up_requested"], 2);
/// assert_eq!(counts["round_completed"], 1);
/// ```
#[derive(Debug, Clone)]
pub struct Tracer {
    inner: Arc<Mutex<TracerState>>,
}

impl Tracer {
    /// Creates a tracer holding at most `capacity` events (oldest events
    /// are dropped first).
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "tracer capacity must be positive");
        Tracer {
            inner: Arc::new(Mutex::new(TracerState {
                events: VecDeque::with_capacity(capacity.min(1_024)),
                capacity,
                dropped: 0,
                rounds: 0,
            })),
        }
    }

    /// Appends one event.
    pub fn record(&self, event: TraceEvent) {
        let mut state = self.inner.lock();
        if state.events.len() == state.capacity {
            state.events.pop_front();
            state.dropped += 1;
        }
        state.events.push_back(event);
    }

    /// Allocates and returns the next round number.
    pub fn next_round(&self) -> u64 {
        let mut state = self.inner.lock();
        let round = state.rounds;
        state.rounds += 1;
        round
    }

    /// A snapshot of the buffered events, oldest first.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.inner.lock().events.iter().cloned().collect()
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.inner.lock().events.len()
    }

    /// True when no events are buffered.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().events.is_empty()
    }

    /// Events dropped because the buffer was full.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().dropped
    }

    /// Count of buffered events per kind label.
    pub fn counts_by_kind(&self) -> std::collections::BTreeMap<&'static str, usize> {
        let mut out = std::collections::BTreeMap::new();
        for event in self.inner.lock().events.iter() {
            *out.entry(event.kind()).or_insert(0) += 1;
        }
        out
    }

    /// Clears the buffer (the dropped counter and round counter survive).
    pub fn clear(&self) {
        self.inner.lock().events.clear();
    }
}

impl Default for Tracer {
    fn default() -> Self {
        Tracer::new(4_096)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_in_order() {
        let tracer = Tracer::new(10);
        assert!(tracer.is_empty());
        tracer.record(TraceEvent::TopUpRequested {
            node: NodeId(1),
            target: 0.5,
        });
        tracer.record(TraceEvent::BatchDelivered {
            node: NodeId(1),
            entries: 7,
            attempts: 1,
        });
        let events = tracer.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].kind(), "top_up_requested");
        assert_eq!(events[1].kind(), "batch_delivered");
    }

    #[test]
    fn ring_buffer_drops_oldest() {
        let tracer = Tracer::new(3);
        for i in 0..5 {
            tracer.record(TraceEvent::NodeSilent { node: NodeId(i) });
        }
        assert_eq!(tracer.len(), 3);
        assert_eq!(tracer.dropped(), 2);
        match &tracer.events()[0] {
            TraceEvent::NodeSilent { node } => assert_eq!(*node, NodeId(2)),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn counts_by_kind_aggregates() {
        let tracer = Tracer::new(16);
        for _ in 0..3 {
            tracer.record(TraceEvent::BatchLost {
                node: NodeId(0),
                entries: 1,
            });
        }
        tracer.record(TraceEvent::RoundCompleted {
            round: 0,
            target: 0.1,
            delivered: 5,
        });
        let counts = tracer.counts_by_kind();
        assert_eq!(counts["batch_lost"], 3);
        assert_eq!(counts["round_completed"], 1);
    }

    #[test]
    fn rounds_are_monotone_and_clear_preserves_counters() {
        let tracer = Tracer::new(4);
        assert_eq!(tracer.next_round(), 0);
        assert_eq!(tracer.next_round(), 1);
        tracer.record(TraceEvent::NodeSilent { node: NodeId(0) });
        tracer.clear();
        assert!(tracer.is_empty());
        assert_eq!(tracer.next_round(), 2);
    }

    #[test]
    fn clones_share_the_buffer() {
        let tracer = Tracer::new(8);
        let clone = tracer.clone();
        clone.record(TraceEvent::NodeSilent { node: NodeId(9) });
        assert_eq!(tracer.len(), 1);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = Tracer::new(0);
    }
}
