//! Radio energy accounting and network-lifetime estimation.
//!
//! The paper's motivation — and its related work (\[16\] Boulis et al.,
//! \[17\] Tang & Xu) — is the *energy–accuracy trade-off*: every byte a
//! battery-powered node transmits shortens the network's life. This
//! module converts the [`crate::network::CostMeter`]'s per-node byte
//! counts into energy, and energy into the classic lifetime metric
//! (rounds until the first node dies).

use std::collections::BTreeMap;

use crate::message::NodeId;
use crate::network::CostMeter;

/// A linear radio energy model: `energy = fixed + per_byte · bytes` per
/// transmission burst, in nanojoules.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct EnergyModel {
    /// Energy per transmitted byte, nJ.
    pub tx_nj_per_byte: f64,
    /// Fixed per-round radio wake-up overhead, nJ.
    pub wakeup_nj: f64,
}

impl EnergyModel {
    /// A model shaped like a CC2420-class 802.15.4 radio: ≈ 1.6 µJ per
    /// transmitted byte and ≈ 10 µJ of wake-up overhead per round.
    pub fn low_power_radio() -> Self {
        EnergyModel {
            tx_nj_per_byte: 1_600.0,
            wakeup_nj: 10_000.0,
        }
    }

    /// Creates a custom model.
    ///
    /// # Panics
    ///
    /// Panics unless both parameters are finite and non-negative.
    pub fn new(tx_nj_per_byte: f64, wakeup_nj: f64) -> Self {
        assert!(
            tx_nj_per_byte.is_finite() && tx_nj_per_byte >= 0.0,
            "per-byte energy must be finite and non-negative"
        );
        assert!(
            wakeup_nj.is_finite() && wakeup_nj >= 0.0,
            "wake-up energy must be finite and non-negative"
        );
        EnergyModel {
            tx_nj_per_byte,
            wakeup_nj,
        }
    }

    /// Energy for one node that transmitted `bytes` this round, nJ.
    pub fn round_energy_nj(&self, bytes: u64) -> f64 {
        if bytes == 0 {
            return 0.0; // silent nodes keep the radio off
        }
        self.wakeup_nj + self.tx_nj_per_byte * bytes as f64
    }
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel::low_power_radio()
    }
}

/// Per-node energy report for a collection round (or a whole session).
///
/// # Examples
///
/// ```
/// use prc_net::energy::{EnergyModel, EnergyReport};
/// use prc_net::network::FlatNetwork;
///
/// let mut network = FlatNetwork::from_partitions(
///     vec![(0..500).map(f64::from).collect(); 4], 7);
/// network.collect_samples(0.3);
/// let report = EnergyReport::from_meter(network.meter(), &EnergyModel::low_power_radio());
/// assert_eq!(report.active_nodes(), 4);
/// // A 10 J battery survives some number of identical rounds.
/// assert!(report.lifetime_rounds(10e9).unwrap() > 0);
/// ```
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct EnergyReport {
    per_node_nj: BTreeMap<NodeId, f64>,
}

impl EnergyReport {
    /// Builds a report from a cost meter's per-node byte counts.
    pub fn from_meter(meter: &CostMeter, model: &EnergyModel) -> Self {
        let per_node_nj = meter
            .per_node_bytes()
            .into_iter()
            .map(|(node, bytes)| (node, model.round_energy_nj(bytes)))
            .collect();
        EnergyReport { per_node_nj }
    }

    /// Energy spent by one node, nJ (zero when it never transmitted).
    pub fn node_energy_nj(&self, node: NodeId) -> f64 {
        self.per_node_nj.get(&node).copied().unwrap_or(0.0)
    }

    /// Total energy across all nodes, nJ.
    pub fn total_nj(&self) -> f64 {
        self.per_node_nj.values().sum()
    }

    /// The most drained node and its energy, if any node transmitted.
    pub fn hottest_node(&self) -> Option<(NodeId, f64)> {
        self.per_node_nj
            .iter()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(&n, &e)| (n, e))
    }

    /// Number of nodes that transmitted.
    pub fn active_nodes(&self) -> usize {
        self.per_node_nj.len()
    }

    /// Classic lifetime metric: the number of identical rounds a network
    /// survives before its *most drained* node exhausts a battery of
    /// `battery_nj`, treating this report as one round's consumption.
    ///
    /// Returns `None` when no node consumed anything (infinite lifetime).
    pub fn lifetime_rounds(&self, battery_nj: f64) -> Option<u64> {
        let (_, max) = self.hottest_node()?;
        if max <= 0.0 {
            return None;
        }
        Some((battery_nj / max).floor() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::FlatNetwork;
    use crate::tree::TreeNetwork;

    fn partitions(k: usize, per_node: usize) -> Vec<Vec<f64>> {
        (0..k)
            .map(|i| (0..per_node).map(|j| (i * per_node + j) as f64).collect())
            .collect()
    }

    #[test]
    fn model_arithmetic() {
        let model = EnergyModel::new(100.0, 1_000.0);
        assert_eq!(model.round_energy_nj(0), 0.0);
        assert_eq!(model.round_energy_nj(10), 2_000.0);
        let default = EnergyModel::default();
        assert_eq!(default, EnergyModel::low_power_radio());
    }

    #[test]
    #[should_panic(expected = "per-byte energy")]
    fn negative_energy_panics() {
        let _ = EnergyModel::new(-1.0, 0.0);
    }

    #[test]
    fn report_tracks_per_node_bytes() {
        let mut net = FlatNetwork::from_partitions(partitions(4, 500), 3);
        net.collect_samples(0.3);
        let report = EnergyReport::from_meter(net.meter(), &EnergyModel::low_power_radio());
        assert_eq!(report.active_nodes(), 4);
        assert!(report.total_nj() > 0.0);
        let (hot, hot_energy) = report.hottest_node().unwrap();
        assert!(hot_energy >= report.node_energy_nj(NodeId(0)));
        assert!(report.node_energy_nj(hot) == hot_energy);
        assert_eq!(report.node_energy_nj(NodeId(99)), 0.0);
    }

    #[test]
    fn energy_grows_with_sampling_probability() {
        let energy_at = |p: f64| {
            let mut net = FlatNetwork::from_partitions(partitions(5, 1_000), 7);
            net.collect_samples(p);
            EnergyReport::from_meter(net.meter(), &EnergyModel::low_power_radio()).total_nj()
        };
        assert!(energy_at(0.4) > energy_at(0.05) * 2.0);
    }

    #[test]
    fn tree_costs_more_energy_than_flat() {
        let parts = partitions(15, 400);
        let mut flat = FlatNetwork::from_partitions(parts.clone(), 9);
        flat.collect_samples(0.3);
        let mut tree = TreeNetwork::from_partitions(parts, 2, 9);
        tree.collect_samples(0.3);
        let model = EnergyModel::low_power_radio();
        let flat_energy = EnergyReport::from_meter(flat.meter(), &model).total_nj();
        let tree_energy = EnergyReport::from_meter(tree.meter(), &model).total_nj();
        assert!(
            tree_energy > flat_energy,
            "hop relaying must cost energy: {tree_energy} vs {flat_energy}"
        );
    }

    #[test]
    fn lifetime_shrinks_with_heavier_sampling() {
        let lifetime_at = |p: f64| {
            let mut net = FlatNetwork::from_partitions(partitions(5, 2_000), 11);
            net.collect_samples(p);
            EnergyReport::from_meter(net.meter(), &EnergyModel::low_power_radio())
                .lifetime_rounds(10e9) // a 10 J battery
                .unwrap()
        };
        assert!(lifetime_at(0.05) > lifetime_at(0.5));
    }

    #[test]
    fn silent_network_has_infinite_lifetime() {
        let net = FlatNetwork::from_partitions(partitions(2, 10), 0);
        let report = EnergyReport::from_meter(net.meter(), &EnergyModel::low_power_radio());
        assert_eq!(report.lifetime_rounds(1e9), None);
        assert_eq!(report.active_nodes(), 0);
        assert_eq!(report.total_nj(), 0.0);
    }
}
