//! Partitioning datasets across IoT nodes.
//!
//! The paper's system model distributes the global dataset `D` over `k`
//! smart devices, `D = ∪ D_i`. This module provides the partitioning
//! strategies used to set up that distribution in simulations:
//!
//! * [`PartitionStrategy::RoundRobin`] — record `j` goes to node
//!   `j mod k`; every node sees a temporally interleaved slice (the
//!   closest analogue of co-located sensors all observing the city).
//! * [`PartitionStrategy::Contiguous`] — the record stream is cut into `k`
//!   consecutive blocks; nodes see disjoint time windows (the analogue of
//!   a sensor per epoch, and the worst case for value skew across nodes).
//! * [`PartitionStrategy::BySensor`] — records are grouped by
//!   `sensor_id mod k`, matching a deployment where each physical sensor
//!   reports to its own gateway node.

use crate::record::{Dataset, PollutionRecord};

/// How to split a dataset across `k` nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum PartitionStrategy {
    /// Record `j` goes to node `j mod k`.
    RoundRobin,
    /// The record stream is cut into `k` consecutive, near-equal blocks.
    Contiguous,
    /// Records are grouped by `sensor_id mod k`.
    BySensor,
}

/// Splits a slice of raw values across `k` nodes.
///
/// This is the value-level twin of [`partition_records`], used when an
/// experiment works directly on one air-quality index.
///
/// # Examples
///
/// ```
/// use prc_data::partition::{partition_values, PartitionStrategy};
///
/// let values = [1.0, 2.0, 3.0, 4.0, 5.0];
/// let parts = partition_values(&values, 2, PartitionStrategy::RoundRobin);
/// assert_eq!(parts[0], vec![1.0, 3.0, 5.0]);
/// assert_eq!(parts[1], vec![2.0, 4.0]);
/// ```
///
/// # Panics
///
/// Panics if `k == 0`.
pub fn partition_values(values: &[f64], k: usize, strategy: PartitionStrategy) -> Vec<Vec<f64>> {
    assert!(k > 0, "cannot partition across zero nodes");
    let mut parts: Vec<Vec<f64>> = vec![Vec::new(); k];
    match strategy {
        PartitionStrategy::RoundRobin => {
            for (j, &v) in values.iter().enumerate() {
                parts[j % k].push(v);
            }
        }
        PartitionStrategy::Contiguous => {
            for (i, chunk) in contiguous_chunks(values.len(), k).into_iter().enumerate() {
                parts[i] = values[chunk].to_vec();
            }
        }
        PartitionStrategy::BySensor => {
            // Without sensor metadata, BySensor degenerates to RoundRobin.
            for (j, &v) in values.iter().enumerate() {
                parts[j % k].push(v);
            }
        }
    }
    parts
}

/// Splits a dataset's records across `k` nodes.
///
/// # Panics
///
/// Panics if `k == 0`.
pub fn partition_records(
    dataset: &Dataset,
    k: usize,
    strategy: PartitionStrategy,
) -> Vec<Vec<PollutionRecord>> {
    assert!(k > 0, "cannot partition across zero nodes");
    let mut parts: Vec<Vec<PollutionRecord>> = vec![Vec::new(); k];
    match strategy {
        PartitionStrategy::RoundRobin => {
            for (j, r) in dataset.iter().enumerate() {
                parts[j % k].push(*r);
            }
        }
        PartitionStrategy::Contiguous => {
            let records = dataset.records();
            for (i, chunk) in contiguous_chunks(records.len(), k).into_iter().enumerate() {
                parts[i] = records[chunk].to_vec();
            }
        }
        PartitionStrategy::BySensor => {
            for r in dataset {
                parts[(r.sensor_id as usize) % k].push(*r);
            }
        }
    }
    parts
}

/// Near-equal contiguous index ranges covering `0..len` with `k` chunks.
///
/// The first `len % k` chunks receive one extra element.
fn contiguous_chunks(len: usize, k: usize) -> Vec<std::ops::Range<usize>> {
    let base = len / k;
    let extra = len % k;
    let mut ranges = Vec::with_capacity(k);
    let mut start = 0;
    for i in 0..k {
        let size = base + usize::from(i < extra);
        ranges.push(start..start + size);
        start += size;
    }
    ranges
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Timestamp;

    fn rec(sensor: u32, v: f64) -> PollutionRecord {
        PollutionRecord {
            timestamp: Timestamp(0),
            sensor_id: sensor,
            ozone: v,
            particulate_matter: v,
            carbon_monoxide: v,
            sulfur_dioxide: v,
            nitrogen_dioxide: v,
        }
    }

    #[test]
    fn round_robin_interleaves() {
        let parts = partition_values(&[0.0, 1.0, 2.0, 3.0, 4.0], 2, PartitionStrategy::RoundRobin);
        assert_eq!(parts[0], vec![0.0, 2.0, 4.0]);
        assert_eq!(parts[1], vec![1.0, 3.0]);
    }

    #[test]
    fn contiguous_blocks_preserve_order_and_cover() {
        let values: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let parts = partition_values(&values, 3, PartitionStrategy::Contiguous);
        assert_eq!(parts[0], vec![0.0, 1.0, 2.0, 3.0]);
        assert_eq!(parts[1], vec![4.0, 5.0, 6.0]);
        assert_eq!(parts[2], vec![7.0, 8.0, 9.0]);
    }

    #[test]
    fn every_strategy_conserves_elements() {
        let values: Vec<f64> = (0..103).map(|i| i as f64).collect();
        for strategy in [
            PartitionStrategy::RoundRobin,
            PartitionStrategy::Contiguous,
            PartitionStrategy::BySensor,
        ] {
            let parts = partition_values(&values, 7, strategy);
            assert_eq!(parts.len(), 7);
            let total: usize = parts.iter().map(Vec::len).sum();
            assert_eq!(total, 103, "{strategy:?} lost elements");
            let mut all: Vec<f64> = parts.into_iter().flatten().collect();
            all.sort_by(|a, b| a.partial_cmp(b).unwrap());
            assert_eq!(all, values);
        }
    }

    #[test]
    fn more_nodes_than_elements_leaves_empty_nodes() {
        let parts = partition_values(&[1.0, 2.0], 5, PartitionStrategy::Contiguous);
        assert_eq!(parts.iter().filter(|p| p.is_empty()).count(), 3);
        let parts = partition_values(&[1.0, 2.0], 5, PartitionStrategy::RoundRobin);
        assert_eq!(parts.iter().filter(|p| !p.is_empty()).count(), 2);
    }

    #[test]
    fn by_sensor_groups_records() {
        let ds = Dataset::from_records(vec![rec(0, 1.0), rec(1, 2.0), rec(2, 3.0), rec(0, 4.0)]);
        let parts = partition_records(&ds, 2, PartitionStrategy::BySensor);
        // Sensors 0 and 2 map to node 0; sensor 1 maps to node 1.
        assert_eq!(parts[0].len(), 3);
        assert_eq!(parts[1].len(), 1);
        assert_eq!(parts[1][0].ozone, 2.0);
    }

    #[test]
    fn record_partition_conserves() {
        let ds = Dataset::from_records((0..50).map(|i| rec(i % 4, i as f64)).collect());
        for strategy in [
            PartitionStrategy::RoundRobin,
            PartitionStrategy::Contiguous,
            PartitionStrategy::BySensor,
        ] {
            let parts = partition_records(&ds, 6, strategy);
            let total: usize = parts.iter().map(Vec::len).sum();
            assert_eq!(total, 50);
        }
    }

    #[test]
    #[should_panic(expected = "zero nodes")]
    fn zero_nodes_panics() {
        let _ = partition_values(&[1.0], 0, PartitionStrategy::RoundRobin);
    }

    #[test]
    fn chunk_helper_covers_edge_cases() {
        assert_eq!(contiguous_chunks(0, 3), vec![0..0, 0..0, 0..0]);
        assert_eq!(contiguous_chunks(5, 1), vec![0..5]);
        assert_eq!(contiguous_chunks(5, 2), vec![0..3, 3..5]);
    }
}
