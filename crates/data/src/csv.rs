//! CSV codec for pollution datasets.
//!
//! Two dialects are accepted when reading:
//!
//! 1. the canonical dialect written by [`write_csv`]:
//!    `timestamp,sensor_id,ozone,particulate_matter,carbon_monoxide,sulfur_dioxide,nitrogen_dioxide`
//!    with timestamps as unix seconds;
//! 2. the original CityPulse dialect, whose headers use the dataset's own
//!    (misspelled) column names `particullate_matter` / `sulfure_dioxide`,
//!    carry extra `longitude`/`latitude` columns, and stamp rows with civil
//!    times such as `2014-08-01 00:05:00`.
//!
//! Columns are located by header name, so column order is irrelevant and
//! unknown columns are ignored.

use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

use crate::error::DataError;
use crate::record::{Dataset, PollutionRecord};
use crate::time::Timestamp;

/// Header aliases accepted for each logical column.
const COLUMN_ALIASES: [(&str, &[&str]); 7] = [
    ("timestamp", &["timestamp", "time", "date"]),
    ("sensor_id", &["sensor_id", "sensor", "report_id"]),
    ("ozone", &["ozone"]),
    (
        "particulate_matter",
        &["particulate_matter", "particullate_matter", "pm"],
    ),
    ("carbon_monoxide", &["carbon_monoxide", "co"]),
    (
        "sulfur_dioxide",
        &["sulfur_dioxide", "sulfure_dioxide", "so2"],
    ),
    ("nitrogen_dioxide", &["nitrogen_dioxide", "no2"]),
];

/// Reads a dataset from any [`Read`] source.
///
/// The `sensor_id` column is optional (the original CityPulse files carry
/// one file per sensor); missing sensor ids default to `0`.
///
/// # Errors
///
/// Returns [`DataError`] when the header misses a required column, a row
/// has the wrong field count, or a field fails to parse.
pub fn read_csv<R: Read>(reader: R) -> Result<Dataset, DataError> {
    let reader = BufReader::new(reader);
    let mut lines = reader.lines();

    let header_line = match lines.next() {
        Some(line) => line?,
        None => return Err(DataError::Empty),
    };
    let headers: Vec<String> = header_line
        .split(',')
        .map(|h| h.trim().to_ascii_lowercase())
        .collect();

    let locate = |logical: &str| -> Option<usize> {
        let aliases = COLUMN_ALIASES
            .iter()
            .find(|(name, _)| *name == logical)
            .map(|(_, aliases)| *aliases)
            .unwrap_or(&[]);
        headers.iter().position(|h| aliases.contains(&h.as_str()))
    };

    let require = |logical: &str| -> Result<usize, DataError> {
        locate(logical).ok_or_else(|| DataError::MissingColumn {
            column: logical.to_owned(),
        })
    };

    let col_timestamp = require("timestamp")?;
    let col_sensor = locate("sensor_id");
    let col_ozone = require("ozone")?;
    let col_pm = require("particulate_matter")?;
    let col_co = require("carbon_monoxide")?;
    let col_so2 = require("sulfur_dioxide")?;
    let col_no2 = require("nitrogen_dioxide")?;

    let mut records = Vec::new();
    for (i, line) in lines.enumerate() {
        let line = line?;
        let line_no = i + 2; // 1-based, after the header
        if line.trim().is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split(',').map(str::trim).collect();
        if fields.len() != headers.len() {
            return Err(DataError::FieldCount {
                line: line_no,
                expected: headers.len(),
                found: fields.len(),
            });
        }

        let parse_f64 = |col: usize, name: &str| -> Result<f64, DataError> {
            fields[col]
                .parse::<f64>()
                .map_err(|_| DataError::ParseField {
                    line: line_no,
                    column: name.to_owned(),
                    value: fields[col].to_owned(),
                })
        };

        let raw_ts = fields[col_timestamp];
        let timestamp = parse_timestamp(raw_ts).ok_or_else(|| DataError::ParseTimestamp {
            line: line_no,
            value: raw_ts.to_owned(),
        })?;

        let sensor_id = match col_sensor {
            Some(col) => fields[col]
                .parse::<u32>()
                .map_err(|_| DataError::ParseField {
                    line: line_no,
                    column: "sensor_id".to_owned(),
                    value: fields[col].to_owned(),
                })?,
            None => 0,
        };

        records.push(PollutionRecord {
            timestamp,
            sensor_id,
            ozone: parse_f64(col_ozone, "ozone")?,
            particulate_matter: parse_f64(col_pm, "particulate_matter")?,
            carbon_monoxide: parse_f64(col_co, "carbon_monoxide")?,
            sulfur_dioxide: parse_f64(col_so2, "sulfur_dioxide")?,
            nitrogen_dioxide: parse_f64(col_no2, "nitrogen_dioxide")?,
        });
    }

    Ok(Dataset::from_records(records))
}

/// Reads a dataset from a file path.
///
/// # Errors
///
/// Propagates I/O failures and every error of [`read_csv`].
pub fn read_csv_file<P: AsRef<Path>>(path: P) -> Result<Dataset, DataError> {
    let file = std::fs::File::open(path)?;
    read_csv(file)
}

/// Writes a dataset in the canonical dialect (unix-second timestamps).
///
/// # Errors
///
/// Propagates I/O failures from the writer.
pub fn write_csv<W: Write>(mut writer: W, dataset: &Dataset) -> Result<(), DataError> {
    writeln!(
        writer,
        "timestamp,sensor_id,ozone,particulate_matter,carbon_monoxide,sulfur_dioxide,nitrogen_dioxide"
    )?;
    for r in dataset {
        writeln!(
            writer,
            "{},{},{},{},{},{},{}",
            r.timestamp.unix_seconds(),
            r.sensor_id,
            r.ozone,
            r.particulate_matter,
            r.carbon_monoxide,
            r.sulfur_dioxide,
            r.nitrogen_dioxide
        )?;
    }
    Ok(())
}

/// Writes a dataset to a file path in the canonical dialect.
///
/// # Errors
///
/// Propagates I/O failures and every error of [`write_csv`].
pub fn write_csv_file<P: AsRef<Path>>(path: P, dataset: &Dataset) -> Result<(), DataError> {
    let file = std::fs::File::create(path)?;
    write_csv(std::io::BufWriter::new(file), dataset)
}

/// Parses either unix seconds or a civil `YYYY-MM-DD HH:MM:SS` timestamp.
fn parse_timestamp(raw: &str) -> Option<Timestamp> {
    if let Ok(secs) = raw.parse::<i64>() {
        return Some(Timestamp(secs));
    }
    Timestamp::parse_civil(raw)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::CityPulseGenerator;

    #[test]
    fn round_trip_canonical_dialect() {
        let ds = CityPulseGenerator::new(11).record_count(50).generate();
        let mut buf = Vec::new();
        write_csv(&mut buf, &ds).unwrap();
        let back = read_csv(buf.as_slice()).unwrap();
        assert_eq!(back.len(), ds.len());
        for (a, b) in ds.iter().zip(back.iter()) {
            assert_eq!(a.timestamp, b.timestamp);
            assert_eq!(a.sensor_id, b.sensor_id);
            assert!((a.ozone - b.ozone).abs() < 1e-9);
            assert!((a.nitrogen_dioxide - b.nitrogen_dioxide).abs() < 1e-9);
        }
    }

    #[test]
    fn reads_citypulse_dialect() {
        let csv = "\
ozone,particullate_matter,carbon_monoxide,sulfure_dioxide,nitrogen_dioxide,longitude,latitude,timestamp
101,94,49,46,75,10.1050,56.2317,2014-08-01 00:05:00
100,96,48,45,76,10.1050,56.2317,2014-08-01 00:10:00
";
        let ds = read_csv(csv.as_bytes()).unwrap();
        assert_eq!(ds.len(), 2);
        let r = &ds.records()[0];
        assert_eq!(r.timestamp, Timestamp::from_civil(2014, 8, 1, 0, 5, 0));
        assert_eq!(r.sensor_id, 0); // no sensor column in this dialect
        assert_eq!(r.ozone, 101.0);
        assert_eq!(r.particulate_matter, 94.0);
        assert_eq!(r.sulfur_dioxide, 46.0);
    }

    #[test]
    fn header_matching_is_case_insensitive_and_order_free() {
        let csv = "\
Nitrogen_Dioxide,OZONE,sensor_id,timestamp,carbon_monoxide,sulfur_dioxide,particulate_matter
75,101,3,1406851500,49,46,94
";
        let ds = read_csv(csv.as_bytes()).unwrap();
        assert_eq!(ds.records()[0].sensor_id, 3);
        assert_eq!(ds.records()[0].ozone, 101.0);
        assert_eq!(ds.records()[0].nitrogen_dioxide, 75.0);
    }

    #[test]
    fn missing_column_is_reported() {
        let csv = "timestamp,ozone\n0,1.0\n";
        match read_csv(csv.as_bytes()) {
            Err(DataError::MissingColumn { column }) => {
                assert_eq!(column, "particulate_matter");
            }
            other => panic!("expected MissingColumn, got {other:?}"),
        }
    }

    #[test]
    fn bad_field_count_is_reported_with_line() {
        let csv = "\
timestamp,sensor_id,ozone,particulate_matter,carbon_monoxide,sulfur_dioxide,nitrogen_dioxide
0,1,1,2,3,4,5
0,1,1,2,3
";
        match read_csv(csv.as_bytes()) {
            Err(DataError::FieldCount {
                line,
                expected,
                found,
            }) => {
                assert_eq!((line, expected, found), (3, 7, 5));
            }
            other => panic!("expected FieldCount, got {other:?}"),
        }
    }

    #[test]
    fn bad_value_is_reported_with_column() {
        let csv = "\
timestamp,sensor_id,ozone,particulate_matter,carbon_monoxide,sulfur_dioxide,nitrogen_dioxide
0,1,abc,2,3,4,5
";
        match read_csv(csv.as_bytes()) {
            Err(DataError::ParseField {
                line,
                column,
                value,
            }) => {
                assert_eq!(line, 2);
                assert_eq!(column, "ozone");
                assert_eq!(value, "abc");
            }
            other => panic!("expected ParseField, got {other:?}"),
        }
    }

    #[test]
    fn bad_timestamp_is_reported() {
        let csv = "\
timestamp,sensor_id,ozone,particulate_matter,carbon_monoxide,sulfur_dioxide,nitrogen_dioxide
yesterday,1,1,2,3,4,5
";
        assert!(matches!(
            read_csv(csv.as_bytes()),
            Err(DataError::ParseTimestamp { line: 2, .. })
        ));
    }

    #[test]
    fn empty_input_is_an_error_but_header_only_is_empty_dataset() {
        assert!(matches!(read_csv(&b""[..]), Err(DataError::Empty)));
        let csv = "timestamp,sensor_id,ozone,particulate_matter,carbon_monoxide,sulfur_dioxide,nitrogen_dioxide\n";
        let ds = read_csv(csv.as_bytes()).unwrap();
        assert!(ds.is_empty());
    }

    #[test]
    fn blank_lines_are_skipped() {
        let csv = "\
timestamp,sensor_id,ozone,particulate_matter,carbon_monoxide,sulfur_dioxide,nitrogen_dioxide
0,1,1,2,3,4,5

300,1,2,3,4,5,6
";
        let ds = read_csv(csv.as_bytes()).unwrap();
        assert_eq!(ds.len(), 2);
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("prc_data_csv_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.csv");
        let ds = CityPulseGenerator::new(2).record_count(10).generate();
        write_csv_file(&path, &ds).unwrap();
        let back = read_csv_file(&path).unwrap();
        assert_eq!(back.len(), 10);
        std::fs::remove_file(&path).ok();
    }
}
