//! Seeded synthetic CityPulse-like pollution data.
//!
//! The paper evaluates on the 2014 CityPulse Smart City pollution dataset
//! (17,568 records at a five-minute cadence, 2014-08-01 00:05 through
//! 2014-10-01 00:00, five air-quality indexes per record). The original
//! hosting service is offline, so [`CityPulseGenerator`] synthesizes a
//! dataset with the same shape:
//!
//! * identical record count, cadence, and date range by default;
//! * five bounded series (values clipped to the 0–200 AQI-style band the
//!   CityPulse observation generator used);
//! * temporal structure: per-index baselines, diurnal and weekly cycles,
//!   AR(1) noise, and occasional pollution spikes.
//!
//! Every experiment in the paper depends only on the multiset of values and
//! their per-node ordering, so this substitution preserves the evaluated
//! behaviour (see DESIGN.md §2).
//!
//! The generator is deterministic for a fixed seed and configuration.

// prc-lint: allow(B003, reason = "seeded simulation randomness for synthetic datasets; not privacy noise")
use rand::{rngs::StdRng, Rng, RngExt, SeedableRng};

use crate::record::{AirQualityIndex, Dataset, PollutionRecord};
use crate::time::Timestamp;

/// Number of records in the original CityPulse pollution dataset.
pub const CITYPULSE_RECORD_COUNT: usize = 17_568;

/// Observation cadence of the original dataset, in seconds.
pub const CITYPULSE_INTERVAL_SECONDS: i64 = 300;

/// Per-index shape parameters for the synthetic series.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SeriesProfile {
    /// Long-run mean level.
    pub baseline: f64,
    /// Amplitude of the diurnal (24 h) cycle.
    pub diurnal_amplitude: f64,
    /// Hour of day (0–24) at which the diurnal cycle peaks.
    pub peak_hour: f64,
    /// Multiplier applied on weekends (traffic-driven indexes drop).
    pub weekend_factor: f64,
    /// AR(1) coefficient of the noise process, in `[0, 1)`.
    pub ar_coefficient: f64,
    /// Standard deviation of the AR(1) innovations.
    pub noise_std: f64,
    /// Per-record probability of starting a pollution spike.
    pub spike_probability: f64,
    /// Magnitude added at the start of a spike (decays geometrically).
    pub spike_magnitude: f64,
}

impl SeriesProfile {
    /// Default profile for a given air-quality index.
    ///
    /// The numbers are chosen so the five series differ in level, spread,
    /// and temporal character (ozone peaks mid-afternoon, NO₂/CO follow
    /// traffic with morning/evening mass, SO₂ is flat and low), matching
    /// the qualitative behaviour of urban road-side measurements.
    pub fn for_index(index: AirQualityIndex) -> Self {
        match index {
            AirQualityIndex::Ozone => SeriesProfile {
                baseline: 95.0,
                diurnal_amplitude: 30.0,
                peak_hour: 15.0,
                weekend_factor: 1.0,
                ar_coefficient: 0.85,
                noise_std: 9.0,
                spike_probability: 0.002,
                spike_magnitude: 35.0,
            },
            AirQualityIndex::ParticulateMatter => SeriesProfile {
                baseline: 70.0,
                diurnal_amplitude: 18.0,
                peak_hour: 8.0,
                weekend_factor: 0.85,
                ar_coefficient: 0.9,
                noise_std: 12.0,
                spike_probability: 0.004,
                spike_magnitude: 55.0,
            },
            AirQualityIndex::CarbonMonoxide => SeriesProfile {
                baseline: 55.0,
                diurnal_amplitude: 22.0,
                peak_hour: 18.0,
                weekend_factor: 0.8,
                ar_coefficient: 0.8,
                noise_std: 10.0,
                spike_probability: 0.003,
                spike_magnitude: 45.0,
            },
            AirQualityIndex::SulfurDioxide => SeriesProfile {
                baseline: 40.0,
                diurnal_amplitude: 8.0,
                peak_hour: 12.0,
                weekend_factor: 0.95,
                ar_coefficient: 0.7,
                noise_std: 7.0,
                spike_probability: 0.001,
                spike_magnitude: 30.0,
            },
            AirQualityIndex::NitrogenDioxide => SeriesProfile {
                baseline: 80.0,
                diurnal_amplitude: 25.0,
                peak_hour: 9.0,
                weekend_factor: 0.75,
                ar_coefficient: 0.88,
                noise_std: 11.0,
                spike_probability: 0.003,
                spike_magnitude: 50.0,
            },
        }
    }
}

/// Builder-style generator for synthetic CityPulse-like pollution datasets.
///
/// # Examples
///
/// ```
/// use prc_data::generator::CityPulseGenerator;
///
/// // Default configuration: the full 17,568-record dataset.
/// let full = CityPulseGenerator::new(7).generate();
/// assert_eq!(full.len(), 17_568);
///
/// // A smaller dataset for fast tests.
/// let small = CityPulseGenerator::new(7).record_count(100).generate();
/// assert_eq!(small.len(), 100);
/// ```
#[derive(Debug, Clone)]
pub struct CityPulseGenerator {
    seed: u64,
    record_count: usize,
    interval_seconds: i64,
    start: Timestamp,
    sensor_count: u32,
    value_bounds: (f64, f64),
    profiles: [SeriesProfile; 5],
    outage_probability: f64,
    outage_mean_slots: f64,
}

impl CityPulseGenerator {
    /// Creates a generator with the paper's dataset dimensions and the
    /// given RNG seed.
    pub fn new(seed: u64) -> Self {
        CityPulseGenerator {
            seed,
            record_count: CITYPULSE_RECORD_COUNT,
            interval_seconds: CITYPULSE_INTERVAL_SECONDS,
            start: Timestamp::from_civil(2014, 8, 1, 0, 5, 0),
            sensor_count: 8,
            value_bounds: (0.0, 200.0),
            profiles: [
                SeriesProfile::for_index(AirQualityIndex::Ozone),
                SeriesProfile::for_index(AirQualityIndex::ParticulateMatter),
                SeriesProfile::for_index(AirQualityIndex::CarbonMonoxide),
                SeriesProfile::for_index(AirQualityIndex::SulfurDioxide),
                SeriesProfile::for_index(AirQualityIndex::NitrogenDioxide),
            ],
            outage_probability: 0.0,
            outage_mean_slots: 12.0,
        }
    }

    /// Overrides the number of records to generate.
    pub fn record_count(mut self, count: usize) -> Self {
        self.record_count = count;
        self
    }

    /// Overrides the observation cadence in seconds.
    ///
    /// # Panics
    ///
    /// Panics if `seconds` is not positive.
    pub fn interval_seconds(mut self, seconds: i64) -> Self {
        assert!(seconds > 0, "interval must be positive, got {seconds}");
        self.interval_seconds = seconds;
        self
    }

    /// Overrides the timestamp of the first record.
    pub fn start(mut self, start: Timestamp) -> Self {
        self.start = start;
        self
    }

    /// Overrides the number of distinct reporting sensors (records cycle
    /// through sensors round-robin).
    ///
    /// # Panics
    ///
    /// Panics if `count` is zero.
    pub fn sensor_count(mut self, count: u32) -> Self {
        assert!(count > 0, "sensor count must be positive");
        self.sensor_count = count;
        self
    }

    /// Overrides the clipping bounds applied to every generated value.
    ///
    /// # Panics
    ///
    /// Panics if `low >= high` or either bound is not finite.
    pub fn value_bounds(mut self, low: f64, high: f64) -> Self {
        assert!(low.is_finite() && high.is_finite(), "bounds must be finite");
        assert!(low < high, "bounds must satisfy low < high");
        self.value_bounds = (low, high);
        self
    }

    /// Overrides the shape profile of one series.
    pub fn profile(mut self, index: AirQualityIndex, profile: SeriesProfile) -> Self {
        self.profiles[index.position()] = profile;
        self
    }

    /// Enables sensor outages: with probability `start_probability` per
    /// time slot a gap begins, swallowing a geometric number of slots
    /// with the given mean. The generated dataset then has *fewer* records
    /// than `record_count` slots, with irregular timestamp gaps — the
    /// real-world condition the streaming layer has to tolerate.
    ///
    /// # Panics
    ///
    /// Panics unless `start_probability ∈ [0, 1)` and `mean_slots ≥ 1`.
    pub fn outages(mut self, start_probability: f64, mean_slots: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&start_probability),
            "outage probability must be in [0, 1)"
        );
        assert!(
            mean_slots >= 1.0,
            "mean outage duration must be at least one slot"
        );
        self.outage_probability = start_probability;
        self.outage_mean_slots = mean_slots;
        self
    }

    /// Generates the dataset.
    ///
    /// Deterministic: the same configuration and seed always produce the
    /// same records.
    pub fn generate(&self) -> Dataset {
        let mut rng = StdRng::seed_from_u64(self.seed);
        // Independent AR(1) state and spike level per series.
        let mut ar_state = [0.0f64; 5];
        let mut spike_level = [0.0f64; 5];
        let (lo, hi) = self.value_bounds;

        let mut records = Vec::with_capacity(self.record_count);
        let mut outage_remaining = 0u64;
        for i in 0..self.record_count {
            let timestamp = self.start.plus_seconds(i as i64 * self.interval_seconds);
            let hour = timestamp.hour_of_day();
            let weekend = timestamp.day_of_week() >= 5;

            // Sensor outage handling: during a gap the time slot passes
            // but no record is produced (the AR state keeps evolving so
            // post-gap values stay continuous).
            let skip_this_slot = if outage_remaining > 0 {
                outage_remaining -= 1;
                true
            } else if self.outage_probability > 0.0 && rng.random::<f64>() < self.outage_probability
            {
                // Geometric duration with the configured mean; this slot
                // is the first of the gap.
                let continue_p = 1.0 - 1.0 / self.outage_mean_slots;
                while rng.random::<f64>() < continue_p {
                    outage_remaining += 1;
                }
                true
            } else {
                false
            };

            let mut values = [0.0f64; 5];
            for (s, profile) in self.profiles.iter().enumerate() {
                // Diurnal cycle peaking at `peak_hour`.
                let phase = (hour - profile.peak_hour) / 24.0 * std::f64::consts::TAU;
                let diurnal = profile.diurnal_amplitude * phase.cos();
                // AR(1) noise with standard-normal innovations.
                let innovation = sample_standard_normal(&mut rng) * profile.noise_std;
                ar_state[s] = profile.ar_coefficient * ar_state[s] + innovation;
                // Occasional spikes that decay geometrically.
                if rng.random::<f64>() < profile.spike_probability {
                    spike_level[s] += profile.spike_magnitude;
                }
                spike_level[s] *= 0.97;

                let weekday_factor = if weekend { profile.weekend_factor } else { 1.0 };
                let value =
                    (profile.baseline + diurnal) * weekday_factor + ar_state[s] + spike_level[s];
                values[s] = value.clamp(lo, hi);
            }

            if !skip_this_slot {
                let [ozone, particulate_matter, carbon_monoxide, sulfur_dioxide, nitrogen_dioxide] =
                    values;
                records.push(PollutionRecord {
                    timestamp,
                    sensor_id: i as u32 % self.sensor_count,
                    ozone,
                    particulate_matter,
                    carbon_monoxide,
                    sulfur_dioxide,
                    nitrogen_dioxide,
                });
            }
        }
        Dataset::from_records(records)
    }
}

/// Samples a standard normal deviate via the Box–Muller transform.
fn sample_standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.random();
        let u2: f64 = rng.random();
        if u1 > f64::MIN_POSITIVE {
            let r = (-2.0 * u1.ln()).sqrt();
            return r * (std::f64::consts::TAU * u2).cos();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats;

    #[test]
    fn default_matches_paper_dimensions() {
        let ds = CityPulseGenerator::new(1).record_count(500).generate();
        assert_eq!(ds.len(), 500);
        let (first, _) = ds.time_bounds().unwrap();
        assert_eq!(first, Timestamp::from_civil(2014, 8, 1, 0, 5, 0));
        // Cadence is five minutes.
        let recs = ds.records();
        assert_eq!(
            recs[1].timestamp.unix_seconds() - recs[0].timestamp.unix_seconds(),
            300
        );
    }

    #[test]
    fn full_dataset_spans_two_months() {
        let ds = CityPulseGenerator::new(1).generate();
        assert_eq!(ds.len(), CITYPULSE_RECORD_COUNT);
        let (_, last) = ds.time_bounds().unwrap();
        // 17,568 records at 5-minute cadence starting 08-01 00:05 ends 10-01 00:00.
        assert_eq!(last, Timestamp::from_civil(2014, 10, 1, 0, 0, 0));
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let a = CityPulseGenerator::new(99).record_count(300).generate();
        let b = CityPulseGenerator::new(99).record_count(300).generate();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = CityPulseGenerator::new(1).record_count(300).generate();
        let b = CityPulseGenerator::new(2).record_count(300).generate();
        assert_ne!(a, b);
    }

    #[test]
    fn values_respect_bounds() {
        let ds = CityPulseGenerator::new(3).record_count(2_000).generate();
        for rec in &ds {
            for idx in AirQualityIndex::ALL {
                let v = rec.value(idx);
                assert!((0.0..=200.0).contains(&v), "{idx}: {v} out of bounds");
            }
        }
    }

    #[test]
    fn custom_bounds_are_enforced() {
        let ds = CityPulseGenerator::new(3)
            .record_count(500)
            .value_bounds(50.0, 60.0)
            .generate();
        for rec in &ds {
            assert!((50.0..=60.0).contains(&rec.ozone));
        }
    }

    #[test]
    fn series_have_distinct_levels() {
        let ds = CityPulseGenerator::new(4).record_count(5_000).generate();
        let mean = |idx| stats::mean(&ds.values(idx)).unwrap();
        // Ozone baseline (95) sits well above sulfur dioxide (40).
        assert!(mean(AirQualityIndex::Ozone) > mean(AirQualityIndex::SulfurDioxide) + 20.0);
        // NO2 sits above CO.
        assert!(mean(AirQualityIndex::NitrogenDioxide) > mean(AirQualityIndex::CarbonMonoxide));
    }

    #[test]
    fn diurnal_cycle_is_visible() {
        // Ozone should average higher near its 15:00 peak than at 03:00.
        let ds = CityPulseGenerator::new(5).generate();
        let mut peak = Vec::new();
        let mut trough = Vec::new();
        for rec in &ds {
            let h = rec.timestamp.hour_of_day();
            if (14.0..16.0).contains(&h) {
                peak.push(rec.ozone);
            } else if (2.0..4.0).contains(&h) {
                trough.push(rec.ozone);
            }
        }
        let m_peak = stats::mean(&peak).unwrap();
        let m_trough = stats::mean(&trough).unwrap();
        assert!(
            m_peak > m_trough + 20.0,
            "expected diurnal contrast, got peak={m_peak:.1} trough={m_trough:.1}"
        );
    }

    #[test]
    fn sensors_cycle_round_robin() {
        let ds = CityPulseGenerator::new(6)
            .record_count(10)
            .sensor_count(3)
            .generate();
        let ids: Vec<u32> = ds.iter().map(|r| r.sensor_id).collect();
        assert_eq!(ids, vec![0, 1, 2, 0, 1, 2, 0, 1, 2, 0]);
    }

    #[test]
    fn outages_create_gaps() {
        let slots = 5_000;
        let clean = CityPulseGenerator::new(8).record_count(slots).generate();
        let gappy = CityPulseGenerator::new(8)
            .record_count(slots)
            .outages(0.01, 10.0)
            .generate();
        assert_eq!(clean.len(), slots);
        assert!(gappy.len() < slots, "outages must drop records");
        // Expected loss ≈ slots · p · mean = 5000 · 0.01 · 10 ≈ 500 (±wide).
        let lost = slots - gappy.len();
        assert!((100..=1_500).contains(&lost), "lost {lost} records");
        // Timestamps now contain gaps larger than one interval.
        let has_gap = gappy
            .records()
            .windows(2)
            .any(|w| w[1].timestamp.unix_seconds() - w[0].timestamp.unix_seconds() > 300);
        assert!(has_gap, "expected at least one timestamp gap");
        // Still strictly increasing timestamps.
        assert!(gappy
            .records()
            .windows(2)
            .all(|w| w[1].timestamp > w[0].timestamp));
    }

    #[test]
    fn outages_are_deterministic() {
        let a = CityPulseGenerator::new(3)
            .record_count(1_000)
            .outages(0.02, 5.0)
            .generate();
        let b = CityPulseGenerator::new(3)
            .record_count(1_000)
            .outages(0.02, 5.0)
            .generate();
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "outage probability")]
    fn outage_probability_one_panics() {
        let _ = CityPulseGenerator::new(0).outages(1.0, 5.0);
    }

    #[test]
    #[should_panic(expected = "mean outage duration")]
    fn outage_mean_below_one_panics() {
        let _ = CityPulseGenerator::new(0).outages(0.1, 0.5);
    }

    #[test]
    #[should_panic(expected = "interval must be positive")]
    fn zero_interval_panics() {
        let _ = CityPulseGenerator::new(0).interval_seconds(0);
    }

    #[test]
    #[should_panic(expected = "low < high")]
    fn inverted_bounds_panic() {
        let _ = CityPulseGenerator::new(0).value_bounds(10.0, 10.0);
    }

    #[test]
    fn standard_normal_moments() {
        let mut rng = StdRng::seed_from_u64(12);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| sample_standard_normal(&mut rng)).collect();
        let m = stats::mean(&samples).unwrap();
        let v = stats::variance(&samples).unwrap();
        assert!(m.abs() < 0.02, "mean {m}");
        assert!((v - 1.0).abs() < 0.03, "variance {v}");
    }
}
