//! Streaming ingestion: replay and sliding windows.
//!
//! IoT data arrives continuously; long-term deployments answer queries
//! over a *window* of recent observations rather than the full history
//! (the "long-term queries via continuous data collection" setting the
//! paper's related work discusses). This module provides:
//!
//! * [`StreamReplayer`] — replays a recorded dataset in timestamp order,
//!   batch by batch, for simulating live operation;
//! * [`SlidingWindow`] — a time-based window that evicts records older
//!   than its span, exposing a [`Dataset`] snapshot at any instant.

use std::collections::VecDeque;

use crate::record::{Dataset, PollutionRecord};
use crate::time::Timestamp;

/// Replays a dataset in timestamp order, in caller-controlled steps.
#[derive(Debug, Clone)]
pub struct StreamReplayer {
    records: Vec<PollutionRecord>,
    position: usize,
}

impl StreamReplayer {
    /// Creates a replayer; records are sorted by timestamp (stable, so
    /// same-timestamp records keep their original order).
    pub fn new(dataset: &Dataset) -> Self {
        let mut records = dataset.records().to_vec();
        records.sort_by_key(|r| r.timestamp);
        StreamReplayer {
            records,
            position: 0,
        }
    }

    /// Number of records not yet replayed.
    pub fn remaining(&self) -> usize {
        self.records.len() - self.position
    }

    /// True when the stream is exhausted.
    pub fn is_exhausted(&self) -> bool {
        self.position >= self.records.len()
    }

    /// Timestamp of the next record, if any.
    pub fn next_timestamp(&self) -> Option<Timestamp> {
        self.records.get(self.position).map(|r| r.timestamp)
    }

    /// Advances the stream up to (and including) `until`, returning the
    /// released records.
    pub fn advance_until(&mut self, until: Timestamp) -> Vec<PollutionRecord> {
        let start = self.position;
        while self.position < self.records.len() && self.records[self.position].timestamp <= until {
            self.position += 1;
        }
        self.records[start..self.position].to_vec()
    }

    /// Releases the next `count` records (fewer at the end of the stream).
    pub fn advance_by(&mut self, count: usize) -> Vec<PollutionRecord> {
        let end = (self.position + count).min(self.records.len());
        let out = self.records[self.position..end].to_vec();
        self.position = end;
        out
    }
}

/// A time-based sliding window over a record stream.
///
/// # Examples
///
/// ```
/// use prc_data::generator::CityPulseGenerator;
/// use prc_data::stream::{SlidingWindow, StreamReplayer};
///
/// let dataset = CityPulseGenerator::new(1).record_count(100).generate();
/// let mut replay = StreamReplayer::new(&dataset);
/// let mut window = SlidingWindow::new(3_600); // one hour
/// window.ingest_all(replay.advance_by(50));
/// // Five-minute cadence: at most 12 records fit one hour.
/// assert!(window.len() <= 12);
/// assert_eq!(window.snapshot().len(), window.len());
/// ```
#[derive(Debug, Clone)]
pub struct SlidingWindow {
    span_seconds: i64,
    records: VecDeque<PollutionRecord>,
}

impl SlidingWindow {
    /// Creates a window spanning the last `span_seconds` of data.
    ///
    /// # Panics
    ///
    /// Panics if `span_seconds` is not positive.
    pub fn new(span_seconds: i64) -> Self {
        assert!(span_seconds > 0, "window span must be positive");
        SlidingWindow {
            span_seconds,
            records: VecDeque::new(),
        }
    }

    /// The window span in seconds.
    pub fn span_seconds(&self) -> i64 {
        self.span_seconds
    }

    /// Ingests one record (must arrive in non-decreasing timestamp order)
    /// and evicts records that fall out of the window. Returns the number
    /// evicted.
    ///
    /// # Panics
    ///
    /// Panics when the record is older than the newest already ingested
    /// (out-of-order arrival).
    pub fn ingest(&mut self, record: PollutionRecord) -> usize {
        if let Some(newest) = self.records.back() {
            assert!(
                record.timestamp >= newest.timestamp,
                "records must arrive in timestamp order"
            );
        }
        self.records.push_back(record);
        let horizon = record.timestamp.unix_seconds() - self.span_seconds;
        let mut evicted = 0;
        while let Some(front) = self.records.front() {
            if front.timestamp.unix_seconds() <= horizon {
                self.records.pop_front();
                evicted += 1;
            } else {
                break;
            }
        }
        evicted
    }

    /// Ingests a batch, returning the total evictions.
    pub fn ingest_all(&mut self, records: impl IntoIterator<Item = PollutionRecord>) -> usize {
        records.into_iter().map(|r| self.ingest(r)).sum()
    }

    /// Number of records currently inside the window.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when the window holds nothing.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Timestamps of the oldest and newest records, if any.
    pub fn bounds(&self) -> Option<(Timestamp, Timestamp)> {
        match (self.records.front(), self.records.back()) {
            (Some(a), Some(b)) => Some((a.timestamp, b.timestamp)),
            _ => None,
        }
    }

    /// A dataset snapshot of the current window contents.
    pub fn snapshot(&self) -> Dataset {
        Dataset::from_records(self.records.iter().copied().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::CityPulseGenerator;

    fn rec(ts: i64) -> PollutionRecord {
        PollutionRecord {
            timestamp: Timestamp(ts),
            sensor_id: 0,
            ozone: ts as f64,
            particulate_matter: 0.0,
            carbon_monoxide: 0.0,
            sulfur_dioxide: 0.0,
            nitrogen_dioxide: 0.0,
        }
    }

    #[test]
    fn replayer_releases_in_time_order() {
        let ds = Dataset::from_records(vec![rec(300), rec(0), rec(600), rec(150)]);
        let mut replay = StreamReplayer::new(&ds);
        assert_eq!(replay.remaining(), 4);
        assert_eq!(replay.next_timestamp(), Some(Timestamp(0)));
        let first = replay.advance_until(Timestamp(300));
        assert_eq!(
            first.iter().map(|r| r.timestamp.0).collect::<Vec<_>>(),
            vec![0, 150, 300]
        );
        let rest = replay.advance_until(Timestamp(10_000));
        assert_eq!(rest.len(), 1);
        assert!(replay.is_exhausted());
        assert!(replay.advance_until(Timestamp(20_000)).is_empty());
    }

    #[test]
    fn replayer_advance_by_counts() {
        let ds = CityPulseGenerator::new(1).record_count(10).generate();
        let mut replay = StreamReplayer::new(&ds);
        assert_eq!(replay.advance_by(3).len(), 3);
        assert_eq!(replay.advance_by(100).len(), 7);
        assert!(replay.is_exhausted());
        assert_eq!(replay.next_timestamp(), None);
    }

    #[test]
    fn window_evicts_old_records() {
        let mut window = SlidingWindow::new(600);
        assert_eq!(window.ingest(rec(0)), 0);
        assert_eq!(window.ingest(rec(300)), 0);
        assert_eq!(window.ingest(rec(600)), 1); // evicts ts=0 (600 - 600 = 0 is on the horizon)
        assert_eq!(window.len(), 2);
        assert_eq!(window.bounds(), Some((Timestamp(300), Timestamp(600))));
        assert_eq!(window.ingest(rec(2_000)), 2);
        assert_eq!(window.len(), 1);
    }

    #[test]
    #[should_panic(expected = "timestamp order")]
    fn out_of_order_ingest_panics() {
        let mut window = SlidingWindow::new(100);
        window.ingest(rec(500));
        window.ingest(rec(100));
    }

    #[test]
    #[should_panic(expected = "span must be positive")]
    fn zero_span_panics() {
        let _ = SlidingWindow::new(0);
    }

    #[test]
    fn snapshot_is_a_dataset() {
        let mut window = SlidingWindow::new(1_000);
        window.ingest_all([rec(0), rec(300), rec(600)]);
        let ds = window.snapshot();
        assert_eq!(ds.len(), 3);
        assert_eq!(
            ds.values(crate::record::AirQualityIndex::Ozone),
            vec![0.0, 300.0, 600.0]
        );
    }

    #[test]
    fn replay_into_window_keeps_cadence() {
        // End-to-end: replay the generator stream through a 1-hour window.
        let ds = CityPulseGenerator::new(3).record_count(200).generate();
        let mut replay = StreamReplayer::new(&ds);
        let mut window = SlidingWindow::new(3_600);
        while !replay.is_exhausted() {
            let batch = replay.advance_by(10);
            window.ingest_all(batch);
            // Window never exceeds one hour of 5-minute records (12) + 1
            // boundary record.
            assert!(window.len() <= 13, "window {} too large", window.len());
        }
        assert_eq!(window.len(), 12);
        let (oldest, newest) = window.bounds().unwrap();
        assert!(newest.unix_seconds() - oldest.unix_seconds() < 3_600);
    }
}
