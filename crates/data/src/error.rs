//! Error types for dataset loading and parsing.

use std::fmt;

/// Errors produced while reading, parsing, or validating datasets.
#[derive(Debug)]
#[non_exhaustive]
pub enum DataError {
    /// An underlying I/O failure while reading or writing a dataset file.
    Io(std::io::Error),
    /// A CSV header did not contain a required column.
    MissingColumn {
        /// Name of the column that could not be located.
        column: String,
    },
    /// A CSV field failed to parse.
    ParseField {
        /// 1-based line number of the offending record.
        line: usize,
        /// Column name of the offending field.
        column: String,
        /// The raw field content.
        value: String,
    },
    /// A timestamp string did not match the `YYYY-MM-DD HH:MM:SS` layout.
    ParseTimestamp {
        /// 1-based line number of the offending record.
        line: usize,
        /// The raw timestamp string.
        value: String,
    },
    /// A record row had a different number of fields than the header.
    FieldCount {
        /// 1-based line number of the offending record.
        line: usize,
        /// Number of fields expected (from the header).
        expected: usize,
        /// Number of fields found.
        found: usize,
    },
    /// A civil date/time component fell outside its calendar range.
    InvalidCivilTime {
        /// Name of the offending component (`month`, `day`, …).
        field: &'static str,
        /// The offending value.
        value: i64,
    },
    /// The input contained no records.
    Empty,
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::Io(e) => write!(f, "i/o error: {e}"),
            DataError::MissingColumn { column } => {
                write!(f, "csv header is missing required column `{column}`")
            }
            DataError::ParseField {
                line,
                column,
                value,
            } => write!(
                f,
                "line {line}: could not parse field `{column}` from `{value}`"
            ),
            DataError::ParseTimestamp { line, value } => write!(
                f,
                "line {line}: could not parse timestamp `{value}` \
                 (expected `YYYY-MM-DD HH:MM:SS` or unix seconds)"
            ),
            DataError::FieldCount {
                line,
                expected,
                found,
            } => write!(
                f,
                "line {line}: expected {expected} fields but found {found}"
            ),
            DataError::InvalidCivilTime { field, value } => {
                write!(f, "civil time component `{field}` out of range: {value}")
            }
            DataError::Empty => write!(f, "input contained no records"),
        }
    }
}

impl std::error::Error for DataError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DataError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for DataError {
    fn from(e: std::io::Error) -> Self {
        DataError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = DataError::MissingColumn {
            column: "ozone".to_owned(),
        };
        assert!(e.to_string().contains("ozone"));

        let e = DataError::ParseField {
            line: 7,
            column: "carbon_monoxide".to_owned(),
            value: "n/a".to_owned(),
        };
        let s = e.to_string();
        assert!(s.contains("line 7"));
        assert!(s.contains("carbon_monoxide"));
        assert!(s.contains("n/a"));
    }

    #[test]
    fn io_error_source_is_preserved() {
        use std::error::Error as _;
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e = DataError::from(io);
        assert!(e.source().is_some());
        assert!(e.to_string().contains("gone"));
    }

    #[test]
    fn non_io_errors_have_no_source() {
        use std::error::Error as _;
        assert!(DataError::Empty.source().is_none());
    }
}
