//! Pollution records and datasets.
//!
//! A [`PollutionRecord`] mirrors one row of the CityPulse pollution stream:
//! a timestamp, the reporting sensor, and five air-quality index values.
//! A [`Dataset`] is an ordered collection of records with convenience
//! accessors used throughout the workspace (per-index value extraction,
//! time bounds, per-sensor grouping).

use crate::time::Timestamp;

/// The five air-quality indexes carried by every CityPulse pollution record.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize,
)]
pub enum AirQualityIndex {
    /// Ground-level ozone (O₃).
    Ozone,
    /// Particulate matter (PM).
    ParticulateMatter,
    /// Carbon monoxide (CO).
    CarbonMonoxide,
    /// Sulfur dioxide (SO₂).
    SulfurDioxide,
    /// Nitrogen dioxide (NO₂).
    NitrogenDioxide,
}

impl AirQualityIndex {
    /// All five indexes, in the column order used by the CityPulse CSV files.
    pub const ALL: [AirQualityIndex; 5] = [
        AirQualityIndex::Ozone,
        AirQualityIndex::ParticulateMatter,
        AirQualityIndex::CarbonMonoxide,
        AirQualityIndex::SulfurDioxide,
        AirQualityIndex::NitrogenDioxide,
    ];

    /// Canonical snake_case column name.
    pub fn column_name(self) -> &'static str {
        match self {
            AirQualityIndex::Ozone => "ozone",
            AirQualityIndex::ParticulateMatter => "particulate_matter",
            AirQualityIndex::CarbonMonoxide => "carbon_monoxide",
            AirQualityIndex::SulfurDioxide => "sulfur_dioxide",
            AirQualityIndex::NitrogenDioxide => "nitrogen_dioxide",
        }
    }

    /// Human-readable name, as used in the paper's figures.
    pub fn display_name(self) -> &'static str {
        match self {
            AirQualityIndex::Ozone => "Ozone",
            AirQualityIndex::ParticulateMatter => "Particulate Matter",
            AirQualityIndex::CarbonMonoxide => "Carbon Monoxide",
            AirQualityIndex::SulfurDioxide => "Sulfur Dioxide",
            AirQualityIndex::NitrogenDioxide => "Nitrogen Dioxide",
        }
    }

    /// Position of this index within [`AirQualityIndex::ALL`].
    pub fn position(self) -> usize {
        match self {
            AirQualityIndex::Ozone => 0,
            AirQualityIndex::ParticulateMatter => 1,
            AirQualityIndex::CarbonMonoxide => 2,
            AirQualityIndex::SulfurDioxide => 3,
            AirQualityIndex::NitrogenDioxide => 4,
        }
    }
}

impl std::fmt::Display for AirQualityIndex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.display_name())
    }
}

/// Error returned when a string names no air-quality index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseIndexError {
    raw: String,
}

impl std::fmt::Display for ParseIndexError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unknown air-quality index `{}` (expected one of: ozone/o3, \
             particulate_matter/pm, carbon_monoxide/co, sulfur_dioxide/so2, \
             nitrogen_dioxide/no2)",
            self.raw
        )
    }
}

impl std::error::Error for ParseIndexError {}

impl std::str::FromStr for AirQualityIndex {
    type Err = ParseIndexError;

    /// Accepts the canonical column names plus the common chemical
    /// abbreviations, case-insensitively.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let needle = s.trim().to_ascii_lowercase();
        for index in AirQualityIndex::ALL {
            if index.column_name() == needle {
                return Ok(index);
            }
        }
        match needle.as_str() {
            "o3" => Ok(AirQualityIndex::Ozone),
            "pm" => Ok(AirQualityIndex::ParticulateMatter),
            "co" => Ok(AirQualityIndex::CarbonMonoxide),
            "so2" => Ok(AirQualityIndex::SulfurDioxide),
            "no2" => Ok(AirQualityIndex::NitrogenDioxide),
            _ => Err(ParseIndexError { raw: s.to_owned() }),
        }
    }
}

/// One observation row: a timestamp, the reporting sensor, and all five
/// air-quality index values.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PollutionRecord {
    /// Observation time.
    pub timestamp: Timestamp,
    /// Identifier of the reporting road-side sensor.
    pub sensor_id: u32,
    /// Ozone index value.
    pub ozone: f64,
    /// Particulate-matter index value.
    pub particulate_matter: f64,
    /// Carbon-monoxide index value.
    pub carbon_monoxide: f64,
    /// Sulfur-dioxide index value.
    pub sulfur_dioxide: f64,
    /// Nitrogen-dioxide index value.
    pub nitrogen_dioxide: f64,
}

impl PollutionRecord {
    /// Value of the given air-quality index.
    pub fn value(&self, index: AirQualityIndex) -> f64 {
        match index {
            AirQualityIndex::Ozone => self.ozone,
            AirQualityIndex::ParticulateMatter => self.particulate_matter,
            AirQualityIndex::CarbonMonoxide => self.carbon_monoxide,
            AirQualityIndex::SulfurDioxide => self.sulfur_dioxide,
            AirQualityIndex::NitrogenDioxide => self.nitrogen_dioxide,
        }
    }

    /// Mutable access to the given air-quality index value.
    pub fn value_mut(&mut self, index: AirQualityIndex) -> &mut f64 {
        match index {
            AirQualityIndex::Ozone => &mut self.ozone,
            AirQualityIndex::ParticulateMatter => &mut self.particulate_matter,
            AirQualityIndex::CarbonMonoxide => &mut self.carbon_monoxide,
            AirQualityIndex::SulfurDioxide => &mut self.sulfur_dioxide,
            AirQualityIndex::NitrogenDioxide => &mut self.nitrogen_dioxide,
        }
    }
}

/// An ordered collection of pollution records.
///
/// Records are kept in insertion order (the generator and CSV reader both
/// produce time-ascending order).
#[derive(Debug, Clone, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Dataset {
    records: Vec<PollutionRecord>,
}

impl Dataset {
    /// Creates an empty dataset.
    pub fn new() -> Self {
        Dataset::default()
    }

    /// Wraps an existing record vector.
    pub fn from_records(records: Vec<PollutionRecord>) -> Self {
        Dataset { records }
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when the dataset holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Appends a record.
    pub fn push(&mut self, record: PollutionRecord) {
        self.records.push(record);
    }

    /// Borrow the underlying records.
    pub fn records(&self) -> &[PollutionRecord] {
        &self.records
    }

    /// Consumes the dataset, returning its records.
    pub fn into_records(self) -> Vec<PollutionRecord> {
        self.records
    }

    /// Iterator over records.
    pub fn iter(&self) -> std::slice::Iter<'_, PollutionRecord> {
        self.records.iter()
    }

    /// Extracts the values of one air-quality index, in record order.
    pub fn values(&self, index: AirQualityIndex) -> Vec<f64> {
        self.records.iter().map(|r| r.value(index)).collect()
    }

    /// Earliest and latest timestamps, or `None` for an empty dataset.
    pub fn time_bounds(&self) -> Option<(Timestamp, Timestamp)> {
        let min = self.records.iter().map(|r| r.timestamp).min()?;
        let max = self.records.iter().map(|r| r.timestamp).max()?;
        Some((min, max))
    }

    /// Distinct sensor ids present, in ascending order.
    pub fn sensor_ids(&self) -> Vec<u32> {
        let mut ids: Vec<u32> = self.records.iter().map(|r| r.sensor_id).collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    /// Keeps only records within the half-open time interval `[from, to)`.
    pub fn slice_by_time(&self, from: Timestamp, to: Timestamp) -> Dataset {
        Dataset {
            records: self
                .records
                .iter()
                .copied()
                .filter(|r| r.timestamp >= from && r.timestamp < to)
                .collect(),
        }
    }

    /// Returns the first `n` records (or all of them when `n >= len`).
    ///
    /// Used by the data-size sweep in the paper's Fig. 4 experiment.
    pub fn prefix(&self, n: usize) -> Dataset {
        Dataset {
            records: self.records.iter().copied().take(n).collect(),
        }
    }
}

impl FromIterator<PollutionRecord> for Dataset {
    fn from_iter<I: IntoIterator<Item = PollutionRecord>>(iter: I) -> Self {
        Dataset {
            records: iter.into_iter().collect(),
        }
    }
}

impl Extend<PollutionRecord> for Dataset {
    fn extend<I: IntoIterator<Item = PollutionRecord>>(&mut self, iter: I) {
        self.records.extend(iter);
    }
}

impl<'a> IntoIterator for &'a Dataset {
    type Item = &'a PollutionRecord;
    type IntoIter = std::slice::Iter<'a, PollutionRecord>;

    fn into_iter(self) -> Self::IntoIter {
        self.records.iter()
    }
}

impl IntoIterator for Dataset {
    type Item = PollutionRecord;
    type IntoIter = std::vec::IntoIter<PollutionRecord>;

    fn into_iter(self) -> Self::IntoIter {
        self.records.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(ts: i64, sensor: u32, base: f64) -> PollutionRecord {
        PollutionRecord {
            timestamp: Timestamp(ts),
            sensor_id: sensor,
            ozone: base,
            particulate_matter: base + 1.0,
            carbon_monoxide: base + 2.0,
            sulfur_dioxide: base + 3.0,
            nitrogen_dioxide: base + 4.0,
        }
    }

    #[test]
    fn value_accessors_cover_every_index() {
        let r = rec(0, 1, 10.0);
        assert_eq!(r.value(AirQualityIndex::Ozone), 10.0);
        assert_eq!(r.value(AirQualityIndex::ParticulateMatter), 11.0);
        assert_eq!(r.value(AirQualityIndex::CarbonMonoxide), 12.0);
        assert_eq!(r.value(AirQualityIndex::SulfurDioxide), 13.0);
        assert_eq!(r.value(AirQualityIndex::NitrogenDioxide), 14.0);
    }

    #[test]
    fn value_mut_writes_through() {
        let mut r = rec(0, 1, 10.0);
        *r.value_mut(AirQualityIndex::SulfurDioxide) = 99.0;
        assert_eq!(r.sulfur_dioxide, 99.0);
    }

    #[test]
    fn all_positions_are_consistent() {
        for (i, idx) in AirQualityIndex::ALL.iter().enumerate() {
            assert_eq!(idx.position(), i);
        }
    }

    #[test]
    fn from_str_accepts_names_and_abbreviations() {
        for (raw, expected) in [
            ("ozone", AirQualityIndex::Ozone),
            ("O3", AirQualityIndex::Ozone),
            ("pm", AirQualityIndex::ParticulateMatter),
            ("particulate_matter", AirQualityIndex::ParticulateMatter),
            ("CO", AirQualityIndex::CarbonMonoxide),
            ("so2", AirQualityIndex::SulfurDioxide),
            (" no2 ", AirQualityIndex::NitrogenDioxide),
        ] {
            assert_eq!(raw.parse::<AirQualityIndex>().unwrap(), expected, "{raw}");
        }
        let err = "smog".parse::<AirQualityIndex>().unwrap_err();
        assert!(err.to_string().contains("smog"));
    }

    #[test]
    fn column_names_are_distinct() {
        let names: std::collections::HashSet<_> = AirQualityIndex::ALL
            .iter()
            .map(|i| i.column_name())
            .collect();
        assert_eq!(names.len(), 5);
    }

    #[test]
    fn dataset_values_extract_in_order() {
        let ds = Dataset::from_records(vec![rec(0, 1, 1.0), rec(300, 1, 2.0), rec(600, 2, 3.0)]);
        assert_eq!(ds.values(AirQualityIndex::Ozone), vec![1.0, 2.0, 3.0]);
        assert_eq!(
            ds.values(AirQualityIndex::NitrogenDioxide),
            vec![5.0, 6.0, 7.0]
        );
    }

    #[test]
    fn time_bounds_and_sensors() {
        let ds = Dataset::from_records(vec![rec(600, 2, 1.0), rec(0, 1, 2.0), rec(300, 2, 3.0)]);
        assert_eq!(ds.time_bounds(), Some((Timestamp(0), Timestamp(600))));
        assert_eq!(ds.sensor_ids(), vec![1, 2]);
        assert_eq!(Dataset::new().time_bounds(), None);
    }

    #[test]
    fn slice_by_time_is_half_open() {
        let ds = Dataset::from_records(vec![rec(0, 1, 1.0), rec(300, 1, 2.0), rec(600, 1, 3.0)]);
        let sliced = ds.slice_by_time(Timestamp(0), Timestamp(600));
        assert_eq!(sliced.len(), 2);
        assert_eq!(sliced.records()[1].timestamp, Timestamp(300));
    }

    #[test]
    fn prefix_truncates() {
        let ds = Dataset::from_records(vec![rec(0, 1, 1.0), rec(300, 1, 2.0)]);
        assert_eq!(ds.prefix(1).len(), 1);
        assert_eq!(ds.prefix(10).len(), 2);
        assert_eq!(ds.prefix(0).len(), 0);
    }

    #[test]
    fn collect_and_extend() {
        let mut ds: Dataset = (0..3).map(|i| rec(i * 300, 1, i as f64)).collect();
        assert_eq!(ds.len(), 3);
        ds.extend([rec(900, 2, 9.0)]);
        assert_eq!(ds.len(), 4);
        let total: usize = (&ds).into_iter().count();
        assert_eq!(total, 4);
    }
}
