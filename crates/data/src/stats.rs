//! Summary statistics, histograms, and empirical CDFs.
//!
//! These utilities back the benchmark harness (relative-error metrics,
//! workload construction from data quantiles) and the generator's tests.

/// Arithmetic mean, or `None` for an empty slice.
pub fn mean(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    Some(values.iter().sum::<f64>() / values.len() as f64)
}

/// Population variance (dividing by `n`), or `None` for an empty slice.
pub fn variance(values: &[f64]) -> Option<f64> {
    let m = mean(values)?;
    Some(values.iter().map(|v| (v - m).powi(2)).sum::<f64>() / values.len() as f64)
}

/// Sample variance (dividing by `n - 1`), or `None` when fewer than two values.
pub fn sample_variance(values: &[f64]) -> Option<f64> {
    if values.len() < 2 {
        return None;
    }
    let m = mean(values)?;
    Some(values.iter().map(|v| (v - m).powi(2)).sum::<f64>() / (values.len() - 1) as f64)
}

/// Minimum, ignoring NaNs; `None` for an empty slice (or all-NaN input).
pub fn min(values: &[f64]) -> Option<f64> {
    values
        .iter()
        .copied()
        .filter(|v| !v.is_nan())
        .fold(None, |acc, v| Some(acc.map_or(v, |a: f64| a.min(v))))
}

/// Maximum, ignoring NaNs; `None` for an empty slice (or all-NaN input).
pub fn max(values: &[f64]) -> Option<f64> {
    values
        .iter()
        .copied()
        .filter(|v| !v.is_nan())
        .fold(None, |acc, v| Some(acc.map_or(v, |a: f64| a.max(v))))
}

/// Quantile by linear interpolation on the sorted values.
///
/// `q` is clamped to `[0, 1]`. Returns `None` for an empty slice.
///
/// # Examples
///
/// ```
/// let data = [1.0, 2.0, 3.0, 4.0];
/// assert_eq!(prc_data::stats::quantile(&data, 0.5), Some(2.5));
/// assert_eq!(prc_data::stats::quantile(&data, 0.0), Some(1.0));
/// assert_eq!(prc_data::stats::quantile(&data, 1.0), Some(4.0));
/// ```
pub fn quantile(values: &[f64], q: f64) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(f64::total_cmp);
    let q = q.clamp(0.0, 1.0);
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        Some(sorted[lo])
    } else {
        let frac = pos - lo as f64;
        Some(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
    }
}

/// A fixed-width histogram over a closed value range.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Histogram {
    low: f64,
    high: f64,
    counts: Vec<u64>,
    /// Number of observed values outside `[low, high]`.
    outliers: u64,
}

impl Histogram {
    /// Creates a histogram with `bins` equal-width buckets spanning `[low, high]`.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0`, the bounds are not finite, or `low >= high`.
    pub fn new(low: f64, high: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(low.is_finite() && high.is_finite(), "bounds must be finite");
        assert!(low < high, "bounds must satisfy low < high");
        Histogram {
            low,
            high,
            counts: vec![0; bins],
            outliers: 0,
        }
    }

    /// Records one observation.
    pub fn record(&mut self, value: f64) {
        if !value.is_finite() || value < self.low || value > self.high {
            self.outliers += 1;
            return;
        }
        let width = (self.high - self.low) / self.counts.len() as f64;
        let mut idx = ((value - self.low) / width) as usize;
        if idx >= self.counts.len() {
            idx = self.counts.len() - 1; // value == high lands in the last bin
        }
        self.counts[idx] += 1;
    }

    /// Records every value in the slice.
    pub fn record_all(&mut self, values: &[f64]) {
        for &v in values {
            self.record(v);
        }
    }

    /// Per-bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Count of values that fell outside the histogram range.
    pub fn outliers(&self) -> u64 {
        self.outliers
    }

    /// Total in-range observations.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// `(low, high)` bounds of bin `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn bin_bounds(&self, i: usize) -> (f64, f64) {
        assert!(i < self.counts.len(), "bin index out of range");
        let width = (self.high - self.low) / self.counts.len() as f64;
        (
            self.low + width * i as f64,
            self.low + width * (i + 1) as f64,
        )
    }
}

/// An empirical cumulative distribution function over a fixed sample.
#[derive(Debug, Clone, PartialEq)]
pub struct EmpiricalCdf {
    sorted: Vec<f64>,
}

impl EmpiricalCdf {
    /// Builds the CDF from a sample.
    ///
    /// NaN values sort last under IEEE total ordering and so only dilute
    /// the upper tail; callers wanting strictness should filter first.
    pub fn new(values: &[f64]) -> Self {
        let mut sorted = values.to_vec();
        sorted.sort_by(f64::total_cmp);
        EmpiricalCdf { sorted }
    }

    /// `Pr[X <= x]` under the empirical distribution.
    pub fn evaluate(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let count = self.sorted.partition_point(|&v| v <= x);
        count as f64 / self.sorted.len() as f64
    }

    /// Number of sample points.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True when the CDF was built from an empty sample.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Smallest sample value `v` with `Pr[X <= v] >= q`, clamping `q` to `(0, 1]`.
    ///
    /// Returns `None` for an empty sample.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.sorted.is_empty() {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let idx = ((q * self.sorted.len() as f64).ceil() as usize).clamp(1, self.sorted.len());
        Some(self.sorted[idx - 1])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_variance_basics() {
        assert_eq!(mean(&[]), None);
        assert_eq!(mean(&[2.0, 4.0]), Some(3.0));
        assert_eq!(variance(&[]), None);
        assert_eq!(variance(&[1.0, 1.0, 1.0]), Some(0.0));
        assert_eq!(variance(&[1.0, 3.0]), Some(1.0));
        assert_eq!(sample_variance(&[1.0]), None);
        assert_eq!(sample_variance(&[1.0, 3.0]), Some(2.0));
    }

    #[test]
    fn min_max_skip_nan() {
        assert_eq!(min(&[3.0, f64::NAN, 1.0]), Some(1.0));
        assert_eq!(max(&[3.0, f64::NAN, 1.0]), Some(3.0));
        assert_eq!(min(&[]), None);
        assert_eq!(max(&[f64::NAN]), None);
    }

    #[test]
    fn quantile_interpolates() {
        let data = [10.0, 20.0, 30.0];
        assert_eq!(quantile(&data, 0.5), Some(20.0));
        assert_eq!(quantile(&data, 0.25), Some(15.0));
        assert_eq!(quantile(&data, -1.0), Some(10.0));
        assert_eq!(quantile(&data, 2.0), Some(30.0));
        assert_eq!(quantile(&[], 0.5), None);
        assert_eq!(quantile(&[7.0], 0.3), Some(7.0));
    }

    #[test]
    fn histogram_bins_and_edges() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        h.record_all(&[0.0, 1.0, 2.5, 9.9, 10.0]);
        // 0.0 and 1.0 land in bin 0, 2.5 in bin 1, 9.9 and 10.0 in bin 4.
        assert_eq!(h.counts(), &[2, 1, 0, 0, 2]);
        assert_eq!(h.total(), 5);
        assert_eq!(h.outliers(), 0);
        assert_eq!(h.bin_bounds(0), (0.0, 2.0));
        assert_eq!(h.bin_bounds(4), (8.0, 10.0));
    }

    #[test]
    fn histogram_counts_outliers() {
        let mut h = Histogram::new(0.0, 1.0, 2);
        h.record(-0.1);
        h.record(1.1);
        h.record(f64::NAN);
        h.record(f64::INFINITY);
        assert_eq!(h.total(), 0);
        assert_eq!(h.outliers(), 4);
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn histogram_zero_bins_panics() {
        let _ = Histogram::new(0.0, 1.0, 0);
    }

    #[test]
    fn empirical_cdf_matches_definition() {
        let cdf = EmpiricalCdf::new(&[1.0, 2.0, 2.0, 4.0]);
        assert_eq!(cdf.evaluate(0.0), 0.0);
        assert_eq!(cdf.evaluate(1.0), 0.25);
        assert_eq!(cdf.evaluate(2.0), 0.75);
        assert_eq!(cdf.evaluate(3.0), 0.75);
        assert_eq!(cdf.evaluate(100.0), 1.0);
        assert_eq!(cdf.len(), 4);
        assert!(!cdf.is_empty());
    }

    #[test]
    fn empirical_cdf_quantile() {
        let cdf = EmpiricalCdf::new(&[10.0, 20.0, 30.0, 40.0]);
        assert_eq!(cdf.quantile(0.25), Some(10.0));
        assert_eq!(cdf.quantile(0.5), Some(20.0));
        assert_eq!(cdf.quantile(1.0), Some(40.0));
        assert_eq!(cdf.quantile(0.0), Some(10.0));
        assert_eq!(EmpiricalCdf::new(&[]).quantile(0.5), None);
        assert_eq!(EmpiricalCdf::new(&[]).evaluate(0.0), 0.0);
    }
}
