//! # prc-data — pollution dataset substrate
//!
//! This crate provides the data layer for the `prc` workspace, a
//! reproduction of *"Trading Private Range Counting over Big IoT Data"*
//! (Cai & He, ICDCS 2019). The paper evaluates on the 2014 CityPulse Smart
//! City pollution dataset: 17,568 records sampled every five minutes from
//! road-side sensors between 2014-08-01 00:05 and 2014-10-01 00:00, each
//! record carrying five air-quality indexes (ozone, particulate matter,
//! carbon monoxide, sulfur dioxide, and nitrogen dioxide).
//!
//! The original download service is no longer reachable, so this crate
//! ships a **seeded synthetic generator** ([`generator::CityPulseGenerator`])
//! that reproduces the dataset's shape — size, cadence, five bounded and
//! temporally correlated series — which is the only property the paper's
//! estimators and evaluation depend on. A CSV codec ([`csv`]) reads the
//! real dataset when a copy is available.
//!
//! ## Quick start
//!
//! ```
//! use prc_data::generator::CityPulseGenerator;
//! use prc_data::record::AirQualityIndex;
//!
//! let dataset = CityPulseGenerator::new(42).generate();
//! assert_eq!(dataset.len(), 17_568);
//! let ozone = dataset.values(AirQualityIndex::Ozone);
//! assert_eq!(ozone.len(), dataset.len());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod csv;
pub mod error;
pub mod generator;
pub mod partition;
pub mod record;
pub mod stats;
pub mod stream;
pub mod time;

pub use error::DataError;
pub use generator::CityPulseGenerator;
pub use record::{AirQualityIndex, Dataset, PollutionRecord};
