//! Minimal civil-time handling for CityPulse timestamps.
//!
//! The CityPulse pollution dataset stamps every record with a local civil
//! time such as `2014-08-01 00:05:00`. This module converts between such
//! civil times and unix seconds without pulling in a calendar dependency;
//! [`Timestamp::try_from_civil`] is the fallible entry point parsing and
//! ingestion paths must use, so malformed input surfaces as
//! [`DataError::InvalidCivilTime`](crate::error::DataError) instead of a
//! panic.
//! The conversion uses the standard days-from-civil algorithm (Howard
//! Hinnant's `chrono`-compatible formulation) and treats all times as UTC,
//! which is sufficient for a dataset whose semantics only depend on record
//! ordering and spacing.

use crate::error::DataError;

/// A point in time, stored as unix seconds (seconds since 1970-01-01 00:00:00 UTC).
#[derive(
    Debug,
    Clone,
    Copy,
    PartialEq,
    Eq,
    PartialOrd,
    Ord,
    Hash,
    Default,
    serde::Serialize,
    serde::Deserialize,
)]
pub struct Timestamp(pub i64);

impl Timestamp {
    /// Constructs a timestamp from a civil date and time (treated as UTC).
    ///
    /// # Examples
    ///
    /// ```
    /// use prc_data::time::Timestamp;
    /// let t = Timestamp::from_civil(2014, 8, 1, 0, 5, 0);
    /// assert_eq!(t.to_civil(), (2014, 8, 1, 0, 5, 0));
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if `month`, `day`, `hour`, `minute`, or `second` are outside
    /// their calendar ranges. Use [`Timestamp::try_from_civil`] on
    /// untrusted input.
    pub fn from_civil(
        year: i32,
        month: u32,
        day: u32,
        hour: u32,
        minute: u32,
        second: u32,
    ) -> Self {
        match Timestamp::try_from_civil(year, month, day, hour, minute, second) {
            Ok(t) => t,
            // prc-lint: allow(P003, reason = "documented panicking convenience for compile-time-known dates; fallible twin is try_from_civil")
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible twin of [`Timestamp::from_civil`] for untrusted input.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::InvalidCivilTime`] naming the first component
    /// outside its calendar range.
    pub fn try_from_civil(
        year: i32,
        month: u32,
        day: u32,
        hour: u32,
        minute: u32,
        second: u32,
    ) -> Result<Self, DataError> {
        let bad = |field: &'static str, value: u32| DataError::InvalidCivilTime {
            field,
            value: i64::from(value),
        };
        let days_in_month = days_in_month(year, month).ok_or_else(|| bad("month", month))?;
        if day < 1 || day > days_in_month {
            return Err(bad("day", day));
        }
        if hour >= 24 {
            return Err(bad("hour", hour));
        }
        if minute >= 60 {
            return Err(bad("minute", minute));
        }
        if second >= 60 {
            return Err(bad("second", second));
        }
        let days = days_from_civil(year, month, day);
        Ok(Timestamp(
            days * 86_400 + i64::from(hour) * 3_600 + i64::from(minute) * 60 + i64::from(second),
        ))
    }

    /// Decomposes the timestamp into `(year, month, day, hour, minute, second)` in UTC.
    pub fn to_civil(self) -> (i32, u32, u32, u32, u32, u32) {
        let days = self.0.div_euclid(86_400);
        let secs = self.0.rem_euclid(86_400);
        let (y, m, d) = civil_from_days(days);
        let hour = (secs / 3_600) as u32;
        let minute = (secs % 3_600 / 60) as u32;
        let second = (secs % 60) as u32;
        (y, m, d, hour, minute, second)
    }

    /// Unix seconds of this timestamp.
    pub fn unix_seconds(self) -> i64 {
        self.0
    }

    /// Returns a timestamp advanced by `seconds`.
    pub fn plus_seconds(self, seconds: i64) -> Self {
        Timestamp(self.0 + seconds)
    }

    /// Hour of day in `[0, 24)` (UTC), as a fraction including minutes.
    ///
    /// Used by the synthetic generator to drive diurnal pollution cycles.
    pub fn hour_of_day(self) -> f64 {
        let secs = self.0.rem_euclid(86_400);
        secs as f64 / 3_600.0
    }

    /// Day of week with Monday = 0 .. Sunday = 6.
    pub fn day_of_week(self) -> u32 {
        // 1970-01-01 was a Thursday (= 3 with Monday = 0).
        let days = self.0.div_euclid(86_400);
        ((days + 3).rem_euclid(7)) as u32
    }

    /// Parses a `YYYY-MM-DD HH:MM:SS` civil string (treated as UTC).
    ///
    /// Returns `None` when the string does not match the layout or any
    /// component is out of its calendar range.
    pub fn parse_civil(s: &str) -> Option<Self> {
        let s = s.trim();
        let (date, time) = s.split_once([' ', 'T'])?;
        let mut dp = date.split('-');
        let year: i32 = dp.next()?.parse().ok()?;
        let month: u32 = dp.next()?.parse().ok()?;
        let day: u32 = dp.next()?.parse().ok()?;
        if dp.next().is_some() {
            return None;
        }
        let mut tp = time.split(':');
        let hour: u32 = tp.next()?.parse().ok()?;
        let minute: u32 = tp.next()?.parse().ok()?;
        let second: u32 = tp.next().map_or(Some(0), |v| v.parse().ok())?;
        if tp.next().is_some() {
            return None;
        }
        Timestamp::try_from_civil(year, month, day, hour, minute, second).ok()
    }
}

impl std::fmt::Display for Timestamp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (y, mo, d, h, mi, s) = self.to_civil();
        write!(f, "{y:04}-{mo:02}-{d:02} {h:02}:{mi:02}:{s:02}")
    }
}

/// True when `year` is a Gregorian leap year.
pub fn is_leap_year(year: i32) -> bool {
    year % 4 == 0 && (year % 100 != 0 || year % 400 == 0)
}

/// Number of days in `month` of `year`, or `None` when `month` is not in
/// `1..=12`.
pub fn days_in_month(year: i32, month: u32) -> Option<u32> {
    match month {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => Some(31),
        4 | 6 | 9 | 11 => Some(30),
        2 => Some(if is_leap_year(year) { 29 } else { 28 }),
        _ => None,
    }
}

/// Days since 1970-01-01 for the given civil date (may be negative).
fn days_from_civil(y: i32, m: u32, d: u32) -> i64 {
    let y = i64::from(y) - i64::from(m <= 2);
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400; // [0, 399]
    let m = i64::from(m);
    let d = i64::from(d);
    let doy = (153 * (if m > 2 { m - 3 } else { m + 9 }) + 2) / 5 + d - 1; // [0, 365]
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
    era * 146_097 + doe - 719_468
}

/// Civil date for the given number of days since 1970-01-01.
fn civil_from_days(z: i64) -> (i32, u32, u32) {
    let z = z + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = z - era * 146_097; // [0, 146096]
    let yoe = (doe - doe / 1_460 + doe / 36_524 - doe / 146_096) / 365; // [0, 399]
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = doy - (153 * mp + 2) / 5 + 1; // [1, 31]
    let m = if mp < 10 { mp + 3 } else { mp - 9 }; // [1, 12]
    ((y + i64::from(m <= 2)) as i32, m as u32, d as u32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_is_zero() {
        assert_eq!(Timestamp::from_civil(1970, 1, 1, 0, 0, 0).unix_seconds(), 0);
    }

    #[test]
    fn known_timestamps_round_trip() {
        // 2014-08-01 00:05:00 UTC = 1406851500 (verified against `date -u`).
        let t = Timestamp::from_civil(2014, 8, 1, 0, 5, 0);
        assert_eq!(t.unix_seconds(), 1_406_851_500);
        assert_eq!(t.to_civil(), (2014, 8, 1, 0, 5, 0));
        assert_eq!(t.to_string(), "2014-08-01 00:05:00");
    }

    #[test]
    fn civil_round_trip_over_many_days() {
        // Sweep several years including leap boundaries.
        let mut t = Timestamp::from_civil(2012, 1, 1, 0, 0, 0);
        for _ in 0..1500 {
            let (y, m, d, h, mi, s) = t.to_civil();
            assert_eq!(Timestamp::from_civil(y, m, d, h, mi, s), t);
            t = t.plus_seconds(86_400);
        }
    }

    #[test]
    fn leap_year_rules() {
        assert!(is_leap_year(2012));
        assert!(!is_leap_year(2014));
        assert!(is_leap_year(2000));
        assert!(!is_leap_year(1900));
        assert_eq!(days_in_month(2012, 2), Some(29));
        assert_eq!(days_in_month(2014, 2), Some(28));
        assert_eq!(days_in_month(2014, 0), None);
        assert_eq!(days_in_month(2014, 13), None);
    }

    #[test]
    fn try_from_civil_names_the_bad_component() {
        let field = |r: Result<Timestamp, DataError>| match r {
            Err(DataError::InvalidCivilTime { field, .. }) => field,
            other => panic!("expected InvalidCivilTime, got {other:?}"),
        };
        assert_eq!(
            field(Timestamp::try_from_civil(2014, 13, 1, 0, 0, 0)),
            "month"
        );
        assert_eq!(
            field(Timestamp::try_from_civil(2014, 2, 30, 0, 0, 0)),
            "day"
        );
        assert_eq!(
            field(Timestamp::try_from_civil(2014, 8, 1, 24, 0, 0)),
            "hour"
        );
        assert_eq!(
            field(Timestamp::try_from_civil(2014, 8, 1, 0, 60, 0)),
            "minute"
        );
        assert_eq!(
            field(Timestamp::try_from_civil(2014, 8, 1, 0, 0, 60)),
            "second"
        );
        assert_eq!(
            Timestamp::try_from_civil(2014, 8, 1, 0, 5, 0).unwrap(),
            Timestamp::from_civil(2014, 8, 1, 0, 5, 0)
        );
    }

    #[test]
    fn leap_day_is_representable() {
        let t = Timestamp::from_civil(2012, 2, 29, 12, 0, 0);
        assert_eq!(t.to_civil(), (2012, 2, 29, 12, 0, 0));
    }

    #[test]
    fn day_of_week_is_correct() {
        // 2014-08-01 was a Friday.
        assert_eq!(Timestamp::from_civil(2014, 8, 1, 0, 0, 0).day_of_week(), 4);
        // 1970-01-01 was a Thursday.
        assert_eq!(Timestamp(0).day_of_week(), 3);
    }

    #[test]
    fn hour_of_day_fractional() {
        let t = Timestamp::from_civil(2014, 8, 1, 6, 30, 0);
        assert!((t.hour_of_day() - 6.5).abs() < 1e-12);
    }

    #[test]
    fn parse_civil_accepts_standard_layouts() {
        assert_eq!(
            Timestamp::parse_civil("2014-08-01 00:05:00"),
            Some(Timestamp::from_civil(2014, 8, 1, 0, 5, 0))
        );
        assert_eq!(
            Timestamp::parse_civil("2014-08-01T00:05:00"),
            Some(Timestamp::from_civil(2014, 8, 1, 0, 5, 0))
        );
        // Missing seconds default to zero.
        assert_eq!(
            Timestamp::parse_civil("2014-08-01 10:15"),
            Some(Timestamp::from_civil(2014, 8, 1, 10, 15, 0))
        );
    }

    #[test]
    fn parse_civil_rejects_garbage() {
        for bad in [
            "",
            "2014-08-01",
            "not a date",
            "2014-13-01 00:00:00",
            "2014-02-30 00:00:00",
            "2014-08-01 24:00:00",
            "2014-08-01 00:61:00",
            "2014-08-01 00:00:00:00",
            "2014-08-01-02 00:00:00",
        ] {
            assert_eq!(Timestamp::parse_civil(bad), None, "should reject {bad:?}");
        }
    }

    #[test]
    fn display_pads_components() {
        let t = Timestamp::from_civil(2014, 9, 3, 4, 5, 6);
        assert_eq!(t.to_string(), "2014-09-03 04:05:06");
    }

    #[test]
    fn negative_timestamps_decompose() {
        let t = Timestamp::from_civil(1969, 12, 31, 23, 59, 59);
        assert_eq!(t.unix_seconds(), -1);
        assert_eq!(t.to_civil(), (1969, 12, 31, 23, 59, 59));
    }

    #[test]
    fn ordering_matches_seconds() {
        let a = Timestamp::from_civil(2014, 8, 1, 0, 0, 0);
        let b = a.plus_seconds(300);
        assert!(a < b);
    }
}
