//! Concurrency stress test for [`CostMeter`].
//!
//! The meter is the one piece of shared mutable state between the
//! threaded driver's per-node threads, so its counters must hold up
//! under concurrent `record` / `record_lost` traffic: after N threads
//! hammer a shared meter, the snapshot totals must equal the sum of
//! every thread's independently tracked contribution — nothing lost,
//! nothing double-counted.

use std::thread;

use prc::net::message::{Message, NodeId, SampleEntry, SampleMessage};
use prc::net::network::CostSnapshot;
use prc::prelude::*;

const THREADS: usize = 8;
const MESSAGES_PER_THREAD: usize = 500;

/// What one thread expects to have contributed.
#[derive(Default, Clone, Copy, PartialEq, Eq, Debug)]
struct Contribution {
    messages: u64,
    free_messages: u64,
    samples: u64,
    bytes: u64,
    lost_messages: u64,
    node_bytes: u64,
}

fn sample_message(node: u32, entries: usize) -> Message {
    Message::Sample(SampleMessage {
        node_id: NodeId(node),
        population_size: 1_000,
        probability: 0.5,
        entries: (0..entries)
            .map(|r| SampleEntry {
                value: r as f64,
                rank: r as u32 + 1,
            })
            .collect(),
    })
}

/// Replays one thread's deterministic message schedule, either against
/// the real meter or purely arithmetically to predict its contribution.
fn run_schedule(thread_id: usize, meter: Option<&CostMeter>) -> Contribution {
    let node = thread_id as u32;
    let mut expect = Contribution::default();
    for i in 0..MESSAGES_PER_THREAD {
        // Mix free heartbeats, piggybacked and chargeable sample batches,
        // top-ups, multi-hop retransmissions, and outright losses.
        let (message, hops, attempts, lost) = match i % 5 {
            0 => (
                Message::Heartbeat {
                    node_id: NodeId(node),
                },
                1,
                1,
                false,
            ),
            1 => (sample_message(node, 4), 1, 1, false), // rides a heartbeat
            2 => (sample_message(node, 40), 2, 1 + (i % 3) as u32, false),
            3 => (
                Message::TopUpRequest {
                    node_id: NodeId(node),
                    target_probability: 0.75,
                },
                1,
                2,
                false,
            ),
            _ => (sample_message(node, 20), 1, 1, true),
        };
        if lost {
            if let Some(meter) = meter {
                meter.record_lost(&message);
            }
            expect.messages += 1;
            expect.lost_messages += 1;
            expect.bytes += message.wire_size() as u64;
            expect.node_bytes += message.wire_size() as u64;
        } else {
            if let Some(meter) = meter {
                meter.record(&message, hops, attempts);
            }
            let transmissions = u64::from(hops) * u64::from(attempts);
            expect.messages += transmissions;
            if message.is_free() {
                expect.free_messages += transmissions;
            }
            let bytes = message.wire_size() as u64 * transmissions;
            expect.bytes += bytes;
            expect.node_bytes += bytes;
            if let Message::Sample(m) = &message {
                expect.samples += m.entries.len() as u64;
            }
        }
    }
    expect
}

#[test]
fn concurrent_recording_loses_nothing() {
    let meter = CostMeter::new();

    let contributions: Vec<Contribution> = thread::scope(|scope| {
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let meter = meter.clone();
                scope.spawn(move || run_schedule(t, Some(&meter)))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let snapshot = meter.snapshot();
    let sum = |f: fn(&Contribution) -> u64| contributions.iter().map(f).sum::<u64>();
    assert_eq!(snapshot.messages, sum(|c| c.messages));
    assert_eq!(snapshot.free_messages, sum(|c| c.free_messages));
    assert_eq!(snapshot.samples, sum(|c| c.samples));
    assert_eq!(snapshot.bytes, sum(|c| c.bytes));
    assert_eq!(snapshot.lost_messages, sum(|c| c.lost_messages));
    assert_eq!(
        snapshot.chargeable_messages(),
        sum(|c| c.messages) - sum(|c| c.free_messages)
    );

    // Per-node attribution: each thread wrote under its own node id.
    let per_node = meter.per_node_bytes();
    for (t, c) in contributions.iter().enumerate() {
        assert_eq!(per_node[&NodeId(t as u32)], c.node_bytes);
    }
}

#[test]
fn concurrent_totals_match_a_sequential_replay() {
    // The same schedule run sequentially on a fresh meter produces the
    // same snapshot — the meter is order-independent.
    let concurrent = CostMeter::new();
    thread::scope(|scope| {
        for t in 0..THREADS {
            let meter = concurrent.clone();
            scope.spawn(move || run_schedule(t, Some(&meter)));
        }
    });

    let sequential = CostMeter::new();
    for t in 0..THREADS {
        run_schedule(t, Some(&sequential));
    }

    assert_eq!(concurrent.snapshot(), sequential.snapshot());
    assert_eq!(concurrent.per_node_bytes(), sequential.per_node_bytes());
}

#[test]
fn reset_clears_everything_under_contention() {
    let meter = CostMeter::new();
    thread::scope(|scope| {
        for t in 0..THREADS {
            let meter = meter.clone();
            scope.spawn(move || run_schedule(t, Some(&meter)));
        }
    });
    meter.reset();
    assert_eq!(meter.snapshot(), CostSnapshot::default());
    assert!(meter.per_node_bytes().is_empty());
}
