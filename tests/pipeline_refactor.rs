//! Equivalence suite for the staged `QuerySession` pipeline refactor.
//!
//! Every golden constant below is the exact bit pattern of an answer
//! released by the pre-refactor broker (captured from the commit before
//! the pipeline module existed, same seeds, same workloads). The staged
//! pipeline must release **byte-identical** values through every entry
//! point — `answer`, `answer_batch`, `answer_with_epsilon`, and the
//! monitor's `answer_epoch` — on both the flat and the threaded network
//! drivers. Any drift here means the refactor changed an observable
//! release, which is a correctness bug, not a tolerance issue.
//!
//! The suite also pins the two behaviours the refactor *added*:
//! two-phase budgeting (a failed release rolls its hold back — the old
//! single-phase `spend` leaked it) and the priced end-to-end
//! transaction (quote → arbitrage certification → reserve → commit →
//! ledger settlement) with zero test-side glue.

use prc::prelude::*;

fn partitions(k: usize, per_node: usize) -> Vec<Vec<f64>> {
    (0..k)
        .map(|i| (0..per_node).map(|j| (i * per_node + j) as f64).collect())
        .collect()
}

fn request(l: f64, u: f64, a: f64, d: f64) -> QueryRequest {
    QueryRequest::new(
        RangeQuery::new(l, u).expect("test range is valid"),
        Accuracy::new(a, d).expect("test demand is valid"),
    )
}

fn guard(n: usize) -> Box<dyn ReuseGuard> {
    let model = ChebyshevVariance::new(n);
    Box::new(PostedPriceReuse::new(
        InverseVariancePricing::new(1e7, model),
        model,
    ))
}

/// Pre-refactor bits: three sequential `answer` calls, no cache.
/// Scenario: partitions(10, 1000), network seed 8, broker seed 8.
const GOLDEN_SEQ: [u64; 3] = [0x40a39db0382c6cd2, 0x40b33d6a1935f3ec, 0x409f4a4585aafe44];

/// Pre-refactor bits: cached sequence (hit on the repeat), guard(10_000).
/// Scenario: partitions(5, 2000), network seed 6, broker seed 6.
const GOLDEN_CACHED: [u64; 4] = [
    0x40a3c3921f4ab6ce,
    0x40a3c3921f4ab6ce,
    0x40b405c94e4b906f,
    0xc0ba60f611738c08,
];

/// Pre-refactor bits: batched engine with cache + duplicate deferral.
/// Scenario: partitions(8, 700), network seed 21, broker seed 21,
/// guard(5_600).
const GOLDEN_BATCH: [u64; 5] = [
    0x409c00d2d1f08450,
    0x409fe907be30fa29,
    0x40abd8ce9e6fd0a0,
    0x406b9d3a5a45b002,
    0x409fe907be30fa29,
];

/// Pre-refactor bits: batched engine, no cache.
/// Scenario: partitions(6, 700), network seed 9, broker seed 9.
const GOLDEN_BATCH_NOCACHE: [u64; 3] = [0x409ee18e2d273762, 0x40a0d5d8174fbb58, 0x40a31dc7f3a9131c];

/// Pre-refactor bits: fixed-ε hook interleaved with a demand answer.
/// Scenario: partitions(5, 1000), network seed 5, broker seed 5.
const GOLDEN_EPS: [u64; 4] = [
    0x40a3a8e384782938,
    0x40a770580c6a5fbd,
    0x40a6468e4f58fc5b,
    0x40a38a0fb0f3b798,
];

/// Pre-refactor bits: the same interleaving's head on the threaded
/// driver (seed 5).
const GOLDEN_EPS_THREADED: [u64; 2] = [0x40a3a8e384782938, 0x40a280c1bd0ebba8];

/// Pre-refactor bits: three monitor epochs over the CityPulse replay.
const GOLDEN_MONITOR_EPOCHS: [u64; 3] =
    [0x404e4fac71ed722b, 0x4050b59e1d561e52, 0x404b9f4f4e992208];

fn seq_requests() -> [QueryRequest; 3] {
    [
        request(0.0, 2_500.0, 0.1, 0.6),
        request(2_500.0, 7_500.0, 0.05, 0.8),
        request(1_000.0, 3_000.0, 0.08, 0.7),
    ]
}

fn batch_workload() -> Vec<QueryRequest> {
    vec![
        request(0.0, 2_000.0, 0.15, 0.5),
        request(1_000.0, 3_000.0, 0.08, 0.7),
        request(500.0, 3_500.0, 0.15, 0.5),
        request(-10.0, -1.0, 0.15, 0.5),
        request(1_000.0, 3_000.0, 0.08, 0.7), // duplicate of #1
    ]
}

#[test]
fn sequential_answers_match_pre_refactor_bits_flat() {
    let mut broker = DataBroker::new(FlatNetwork::from_partitions(partitions(10, 1_000), 8), 8);
    let bits: Vec<u64> = seq_requests()
        .iter()
        .map(|r| broker.answer(r).unwrap().value.to_bits())
        .collect();
    assert_eq!(bits, GOLDEN_SEQ);
}

#[test]
fn sequential_answers_match_pre_refactor_bits_threaded() {
    let net = ThreadedNetwork::from_partitions(partitions(10, 1_000), 8);
    let mut broker = DataBroker::new(net, 8);
    let bits: Vec<u64> = seq_requests()
        .iter()
        .map(|r| broker.answer(r).unwrap().value.to_bits())
        .collect();
    assert_eq!(bits, GOLDEN_SEQ);
}

#[test]
fn sequential_answers_match_pre_refactor_bits_tree() {
    // The tree driver samples identically for the same seed, so broker
    // answers over it must carry the exact pre-refactor bits — there is
    // no per-driver special case anywhere in prc-core.
    let net = TreeNetwork::from_partitions(partitions(10, 1_000), 2, 8);
    let mut broker = DataBroker::new(net, 8);
    let bits: Vec<u64> = seq_requests()
        .iter()
        .map(|r| broker.answer(r).unwrap().value.to_bits())
        .collect();
    assert_eq!(bits, GOLDEN_SEQ);
}

#[test]
fn batched_answers_match_pre_refactor_bits_tree() {
    let net = TreeNetwork::from_partitions(partitions(8, 700), 3, 21);
    let mut broker = DataBroker::new(net, 21);
    broker.enable_answer_cache(guard(5_600));
    let report = broker.answer_batch(&batch_workload());
    let bits: Vec<u64> = report
        .answers
        .iter()
        .map(|r| r.as_ref().unwrap().value.to_bits())
        .collect();
    assert_eq!(bits, GOLDEN_BATCH);
}

#[test]
fn tree_broker_costs_exceed_flat_by_the_depth_multiplier() {
    // Identical answers (pinned above) — but the tree pays per hop:
    // every node's byte bill is exactly depth × its flat-driver bill.
    use prc::net::message::NodeId;

    let mut flat_broker =
        DataBroker::new(FlatNetwork::from_partitions(partitions(10, 1_000), 8), 8);
    let mut tree_broker =
        DataBroker::new(TreeNetwork::from_partitions(partitions(10, 1_000), 2, 8), 8);
    for r in seq_requests() {
        flat_broker.answer(&r).unwrap();
        tree_broker.answer(&r).unwrap();
    }
    let flat_bytes = flat_broker.network().meter().per_node_bytes();
    let tree_bytes = tree_broker.network().meter().per_node_bytes();
    for i in 0..10u32 {
        let depth = u64::from(tree_broker.network().depth(i as usize));
        assert_eq!(
            tree_bytes[&NodeId(i)],
            flat_bytes[&NodeId(i)] * depth,
            "node {i}: tree bytes must be exactly depth ({depth}) times flat bytes"
        );
    }
    let flat_cost = flat_broker.network().meter().snapshot();
    let tree_cost = tree_broker.network().meter().snapshot();
    assert!(tree_cost.messages > flat_cost.messages);
    assert_eq!(flat_cost.samples, tree_cost.samples);
}

#[test]
fn cached_answers_match_pre_refactor_bits() {
    let mut broker = DataBroker::new(FlatNetwork::from_partitions(partitions(5, 2_000), 6), 6);
    broker.enable_answer_cache(guard(10_000));
    let sequence = [
        request(0.0, 2_500.0, 0.1, 0.6),
        request(0.0, 2_500.0, 0.1, 0.6), // cache hit
        request(2_500.0, 7_500.0, 0.05, 0.8),
        request(0.0, 2_500.0, 0.2, 0.5),
    ];
    let bits: Vec<u64> = sequence
        .iter()
        .map(|r| broker.answer(r).unwrap().value.to_bits())
        .collect();
    assert_eq!(bits, GOLDEN_CACHED);
    assert_eq!(broker.counters().cache_hits, 1);
}

#[test]
fn batched_answers_match_pre_refactor_bits_flat() {
    let mut broker = DataBroker::new(FlatNetwork::from_partitions(partitions(8, 700), 21), 21);
    broker.enable_answer_cache(guard(5_600));
    let report = broker.answer_batch(&batch_workload());
    let bits: Vec<u64> = report
        .answers
        .iter()
        .map(|r| r.as_ref().unwrap().value.to_bits())
        .collect();
    assert_eq!(bits, GOLDEN_BATCH);
}

#[test]
fn batched_answers_match_pre_refactor_bits_threaded() {
    let net = ThreadedNetwork::from_partitions(partitions(8, 700), 21);
    let mut broker = DataBroker::new(net, 21);
    broker.enable_answer_cache(guard(5_600));
    let report = broker.answer_batch(&batch_workload());
    let bits: Vec<u64> = report
        .answers
        .iter()
        .map(|r| r.as_ref().unwrap().value.to_bits())
        .collect();
    assert_eq!(bits, GOLDEN_BATCH);
}

#[test]
fn uncached_batches_match_pre_refactor_bits() {
    let mut broker = DataBroker::new(FlatNetwork::from_partitions(partitions(6, 700), 9), 9);
    let report = broker.answer_batch(&batch_workload()[..3]);
    let bits: Vec<u64> = report
        .answers
        .iter()
        .map(|r| r.as_ref().unwrap().value.to_bits())
        .collect();
    assert_eq!(bits, GOLDEN_BATCH_NOCACHE);
}

#[test]
fn fixed_epsilon_interleaving_matches_pre_refactor_bits_flat() {
    let mut broker = DataBroker::new(FlatNetwork::from_partitions(partitions(5, 1_000), 5), 5);
    let q1 = RangeQuery::new(0.0, 2_500.0).unwrap();
    let q2 = RangeQuery::new(1_000.0, 4_000.0).unwrap();
    let bits = [
        broker
            .answer_with_epsilon(q1, Epsilon::new(2.0).unwrap(), 0.4)
            .unwrap()
            .value
            .to_bits(),
        broker
            .answer_with_epsilon(q2, Epsilon::new(0.5).unwrap(), 0.7)
            .unwrap()
            .value
            .to_bits(),
        broker
            .answer(&request(0.0, 2_500.0, 0.1, 0.6))
            .unwrap()
            .value
            .to_bits(),
        broker
            .answer_with_epsilon(q1, Epsilon::new(1.0).unwrap(), 0.9)
            .unwrap()
            .value
            .to_bits(),
    ];
    assert_eq!(bits, GOLDEN_EPS);
}

#[test]
fn fixed_epsilon_interleaving_matches_pre_refactor_bits_threaded() {
    let net = ThreadedNetwork::from_partitions(partitions(5, 1_000), 5);
    let mut broker = DataBroker::new(net, 5);
    let q1 = RangeQuery::new(0.0, 2_500.0).unwrap();
    let bits = [
        broker
            .answer_with_epsilon(q1, Epsilon::new(2.0).unwrap(), 0.4)
            .unwrap()
            .value
            .to_bits(),
        broker
            .answer(&request(0.0, 2_500.0, 0.1, 0.6))
            .unwrap()
            .value
            .to_bits(),
    ];
    assert_eq!(bits, GOLDEN_EPS_THREADED);
}

#[test]
fn monitor_epochs_match_pre_refactor_bits() {
    use prc::core::monitor::{ContinuousMonitor, MonitorConfig};
    use prc::data::stream::StreamReplayer;

    let dataset = CityPulseGenerator::new(5).record_count(2_000).generate();
    let mut replay = StreamReplayer::new(&dataset);
    let mut monitor = ContinuousMonitor::new(MonitorConfig {
        query: RangeQuery::new(60.0, 140.0).unwrap(),
        accuracy: Accuracy::new(0.15, 0.5).unwrap(),
        index: AirQualityIndex::Ozone,
        window_seconds: 6 * 3_600,
        nodes: 8,
        session_budget: Epsilon::new(10.0).unwrap(),
        seed: 42,
    });
    let mut bits = Vec::new();
    for _ in 0..3 {
        monitor.ingest(replay.advance_by(200));
        bits.push(monitor.answer_epoch().unwrap().answer.value.to_bits());
    }
    assert_eq!(bits, GOLDEN_MONITOR_EPOCHS);
}

#[test]
fn fixed_epsilon_answers_carry_real_metadata_now() {
    let mut broker = DataBroker::new(FlatNetwork::from_partitions(partitions(5, 1_000), 5), 5);
    let q = RangeQuery::new(0.0, 2_500.0).unwrap();
    let answer = broker
        .answer_with_epsilon(q, Epsilon::new(2.0).unwrap(), 0.4)
        .unwrap();
    // No fabricated (0.5, 0.5) demand, no NaN plan fields.
    assert_eq!(answer.accuracy, None);
    assert!(answer.plan.alpha_prime.is_finite());
    assert!(answer.plan.delta_prime.is_finite());
    assert!(answer.plan.tail_probability.is_finite());
    // The degenerate plan still renders a summary both the release and
    // the ledger can carry.
    let summary = answer.plan.summary();
    assert_eq!(summary.noise_variance, answer.plan.noise_variance());
    assert!(!summary.to_string().contains("NaN"));
}

#[test]
fn fixed_epsilon_answers_participate_in_the_cache() {
    let mut broker = DataBroker::new(FlatNetwork::from_partitions(partitions(5, 1_000), 5), 5);
    broker.enable_answer_cache(guard(5_000));
    let q = RangeQuery::new(0.0, 2_500.0).unwrap();
    let eps = Epsilon::new(2.0).unwrap();
    let first = broker.answer_with_epsilon(q, eps, 0.4).unwrap();
    let repeat = broker.answer_with_epsilon(q, eps, 0.4).unwrap();
    assert_eq!(first.value.to_bits(), repeat.value.to_bits());
    assert_eq!(broker.counters().cache_hits, 1);
    // A different ε is a different product: answered fresh.
    let other = broker
        .answer_with_epsilon(q, Epsilon::new(1.0).unwrap(), 0.4)
        .unwrap();
    assert_ne!(other.value.to_bits(), first.value.to_bits());
    // Fixed-ε entries never satisfy (α, δ) demand lookups.
    let fresh = broker.answer(&request(0.0, 2_500.0, 0.1, 0.6)).unwrap();
    assert_ne!(fresh.value.to_bits(), first.value.to_bits());
}

#[test]
fn failed_releases_roll_their_budget_hold_back() {
    // SensitivityPolicy::Fixed(-1) survives planning but fails the noise
    // draw — the exact spot where the old single-phase spend leaked ε.
    let mut broker = DataBroker::new(FlatNetwork::from_partitions(partitions(5, 1_000), 7), 7);
    broker.set_privacy_budget(Epsilon::new(4.0).unwrap());
    let config = OptimizerConfig {
        sensitivity: SensitivityPolicy::Fixed(-1.0),
        ..Default::default()
    };
    broker.set_optimizer_config(config);
    let q = RangeQuery::new(0.0, 2_500.0).unwrap();
    let err = broker.answer_with_epsilon(q, Epsilon::new(1.0).unwrap(), 0.4);
    assert!(err.is_err(), "negative noise scale must fail the draw");
    let accountant = broker.accountant().unwrap();
    assert_eq!(
        accountant.remaining().value(),
        4.0,
        "the failed release must not consume budget"
    );
    assert_eq!(accountant.spent().value(), 0.0);
    assert_eq!(accountant.reserved().value(), 0.0);
    assert_eq!(broker.counters().budget_rollbacks, 1);
    // The budget is genuinely intact: a valid request still succeeds.
    let valid = OptimizerConfig {
        sensitivity: SensitivityPolicy::Expected,
        ..Default::default()
    };
    broker.set_optimizer_config(valid);
    assert!(broker.answer(&request(0.0, 2_500.0, 0.1, 0.6)).is_ok());
}

#[test]
fn priced_end_to_end_transaction_settles_in_the_ledger() {
    // Quote → arbitrage certification → reserve → commit → settlement,
    // all through the broker's own pipeline; the test only inspects.
    let model = ChebyshevVariance::new(10_000);
    let engine = PostedPriceEngine::new(InverseVariancePricing::new(1e7, model), model);
    let mut broker = DataBroker::new(FlatNetwork::from_partitions(partitions(10, 1_000), 8), 8);
    broker.set_privacy_budget(Epsilon::new(4.0).unwrap());
    broker.enable_pricing(Box::new(engine));

    let req = request(0.0, 2_500.0, 0.1, 0.6);
    let priced = broker.answer_as("alice", &req).unwrap();
    let expected_price = InverseVariancePricing::new(1e7, model).price(0.1, 0.6);
    assert_eq!(priced.price, Some(expected_price));
    assert_eq!(priced.settlement, Some(0));
    assert!(priced.answer.value.is_finite());

    // The budget hold was committed, not leaked or left reserved.
    let accountant = broker.accountant().unwrap();
    assert_eq!(accountant.operations(), 1);
    assert_eq!(accountant.reserved().value(), 0.0);
    assert!(accountant.spent().value() > 0.0);

    // The ledger carries the released answer's metadata.
    let engine = broker.pricing().unwrap();
    assert_eq!(engine.ledger().len(), 1);
    let record = &engine.ledger().records()[0];
    assert_eq!(record.buyer, "alice");
    assert_eq!(
        record.noise_variance,
        Some(priced.answer.plan.noise_variance())
    );
    assert_eq!(
        record.plan.as_deref(),
        Some(priced.answer.plan.summary().to_string().as_str())
    );
    assert!((record.price - expected_price).abs() < 1e-9);
    assert_eq!(broker.counters().settlements, 1);
}

#[test]
fn arbitrageable_demands_are_refused_before_any_budget_moves() {
    // LinearDeltaPricing is deliberately exploitable; the engine must
    // refuse the quote at Admit, before a hold or a collection happens.
    let model = ChebyshevVariance::new(10_000);
    let engine = PostedPriceEngine::new(LinearDeltaPricing::new(10.0), model);
    let mut broker = DataBroker::new(FlatNetwork::from_partitions(partitions(10, 1_000), 8), 8);
    broker.set_privacy_budget(Epsilon::new(4.0).unwrap());
    broker.enable_pricing(Box::new(engine));

    let err = broker
        .answer_as("mallory", &request(0.0, 2_500.0, 0.05, 0.8))
        .unwrap_err();
    assert!(matches!(err, CoreError::Pricing(_)), "got {err:?}");
    let accountant = broker.accountant().unwrap();
    assert_eq!(accountant.spent().value(), 0.0);
    assert_eq!(accountant.reserved().value(), 0.0);
    assert_eq!(broker.counters().collection_rounds, 0);
    assert_eq!(broker.pricing().unwrap().ledger().len(), 0);
}

#[test]
fn unpriced_sessions_release_the_same_bits_as_priced_ones() {
    // Pricing is pure bookkeeping: it must not perturb the noise stream.
    let run = |priced: bool| {
        let mut broker = DataBroker::new(FlatNetwork::from_partitions(partitions(10, 1_000), 8), 8);
        if priced {
            let model = ChebyshevVariance::new(10_000);
            broker.enable_pricing(Box::new(PostedPriceEngine::new(
                InverseVariancePricing::new(1e7, model),
                model,
            )));
        }
        seq_requests()
            .iter()
            .map(|r| {
                if priced {
                    broker.answer_as("bob", r).unwrap().answer.value.to_bits()
                } else {
                    broker.answer(r).unwrap().value.to_bits()
                }
            })
            .collect::<Vec<u64>>()
    };
    assert_eq!(run(false), run(true));
    assert_eq!(run(true), GOLDEN_SEQ);
}
