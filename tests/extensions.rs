//! Integration tests for the extension toolkit: sketches, private
//! histograms/quantiles, audits, advanced composition, history-aware
//! pricing.

use prc::core::audit::{audit_answer, verify_answer};
use prc::core::estimator::{RangeCountEstimator, RankCounting};
use prc::core::histogram::private_histogram;
use prc::core::optimizer::NetworkShape;
use prc::core::quantile::{private_quantile, QuantileConfig};
use prc::dp::composition::AdvancedAccountant;
use prc::dp::mechanism::Sensitivity;
use prc::prelude::*;
use prc::sketch::distributed::{digest_partitions, Quantizer, SketchStation};
use rand::SeedableRng;

fn setup() -> (Dataset, Vec<Vec<f64>>) {
    let dataset = CityPulseGenerator::new(77).record_count(8_000).generate();
    let values = dataset.values(AirQualityIndex::Ozone);
    let parts = prc::data::partition::partition_values(&values, 20, PartitionStrategy::RoundRobin);
    (dataset, parts)
}

#[test]
fn sampling_and_sketching_agree_on_the_same_data() {
    // Two completely independent substrates must bracket/approximate the
    // same truth.
    let (_, parts) = setup();
    let quantizer = Quantizer::new(0.0, 200.0, 12);

    // Substrate A: the paper's sampling network.
    let mut network = FlatNetwork::from_partitions(parts.clone(), 5);
    network.collect_samples(0.4);

    // Substrate B: a q-digest per node.
    let mut station = SketchStation::new();
    for sketch in digest_partitions(&parts, &quantizer, 256) {
        station.ingest(sketch);
    }

    for (lo, hi) in [(60.0, 90.0), (80.0, 140.0), (0.0, 200.0)] {
        let a = quantizer.quantize(lo);
        let b = quantizer.quantize(hi);
        let truth = parts
            .iter()
            .flatten()
            .filter(|&&v| {
                let c = quantizer.quantize(v);
                c >= a && c <= b
            })
            .count() as f64;
        let bounds = station.range_count_bounds(&quantizer, a, b);
        assert!(bounds.contains(truth as u64), "sketch bounds miss truth");
        let sampled = RankCounting.estimate(
            network.station(),
            RangeQuery::new(
                quantizer.dequantize(a) - quantizer.cell_width() / 2.0,
                quantizer.dequantize(b) + quantizer.cell_width() / 2.0,
            )
            .unwrap(),
        );
        assert!(
            (sampled - truth).abs() < 0.1 * truth.max(500.0),
            "({lo},{hi}): sampled {sampled} vs truth {truth}"
        );
    }
}

#[test]
fn private_histogram_tracks_the_real_distribution() {
    let (dataset, parts) = setup();
    let mut network = FlatNetwork::from_partitions(parts, 9);
    network.collect_samples(0.4);
    let mut rng = rand::rngs::StdRng::seed_from_u64(9);
    let edges: Vec<f64> = (0..=8).map(|i| i as f64 * 25.0).collect();
    let histogram = private_histogram(
        &RankCounting,
        network.station(),
        &edges,
        Epsilon::new(2.0).unwrap(),
        Sensitivity::new(1.0 / 0.4).unwrap(),
        &mut rng,
    )
    .unwrap();
    // Each noisy bucket should track the truth within sampling + noise
    // slack.
    let values = dataset.values(AirQualityIndex::Ozone);
    let n = values.len() as f64;
    for i in 0..histogram.len() {
        let (lo, hi) = histogram.bucket_bounds(i);
        let truth = values
            .iter()
            .filter(|&&v| {
                if i == 0 {
                    v >= lo && v <= hi
                } else {
                    v > lo && v <= hi
                }
            })
            .count() as f64;
        let err = (histogram.counts()[i] - truth).abs();
        assert!(
            err < 0.05 * n,
            "bucket {i}: err {err} too large (truth {truth})"
        );
    }
    // And the total mass is close to n.
    assert!((histogram.total() - n).abs() < 0.05 * n);
}

#[test]
fn private_quantiles_run_off_the_broker_network() {
    let (dataset, parts) = setup();
    let mut network = FlatNetwork::from_partitions(parts, 13);
    network.collect_samples(0.5);
    let mut rng = rand::rngs::StdRng::seed_from_u64(13);
    let config = QuantileConfig {
        domain: (0.0, 200.0),
        steps: 20,
        epsilon: Epsilon::new(5.0).unwrap(),
        sensitivity: Sensitivity::new(2.0).unwrap(),
    };
    let values = dataset.values(AirQualityIndex::Ozone);
    for q in [0.25, 0.5, 0.75] {
        let result =
            private_quantile(&RankCounting, network.station(), q, &config, &mut rng).unwrap();
        let truth = prc::data::stats::quantile(&values, q).unwrap();
        assert!(
            (result.value - truth).abs() < 12.0,
            "q{q}: {} vs true {truth}",
            result.value
        );
    }
}

#[test]
fn every_broker_answer_survives_a_consumer_audit() {
    let (_, parts) = setup();
    let mut broker = DataBroker::new(FlatNetwork::from_partitions(parts, 21), 21);
    for (alpha, delta) in [(0.05, 0.8), (0.1, 0.6), (0.2, 0.5)] {
        let answer = broker
            .answer(&QueryRequest::new(
                RangeQuery::new(70.0, 130.0).unwrap(),
                Accuracy::new(alpha, delta).unwrap(),
            ))
            .unwrap();
        let shape = NetworkShape::from_station(broker.network().station()).unwrap();
        assert!(
            verify_answer(&answer, shape).is_ok(),
            "audit failed for ({alpha}, {delta}): {:?}",
            audit_answer(&answer, shape)
        );
    }
}

#[test]
fn advanced_accountant_tightens_a_long_broker_session() {
    let (_, parts) = setup();
    let mut broker = DataBroker::new(FlatNetwork::from_partitions(parts, 33), 33);
    let mut accountant = AdvancedAccountant::new();
    let request = QueryRequest::new(
        RangeQuery::new(70.0, 130.0).unwrap(),
        Accuracy::new(0.15, 0.5).unwrap(),
    );
    for _ in 0..200 {
        let answer = broker.answer(&request).unwrap();
        accountant.record(answer.plan.effective_epsilon);
    }
    assert_eq!(accountant.queries(), 200);
    let basic = accountant.basic_total();
    let best = accountant.best_total(1e-6);
    assert!(
        best.epsilon <= basic.epsilon,
        "best bound must never exceed basic"
    );
    // The per-query effective budgets here are tiny, so advanced
    // composition should win decisively on a 200-query session.
    assert!(
        best.epsilon < basic.epsilon,
        "expected advanced composition to win: basic {} vs best {}",
        basic.epsilon,
        best.epsilon
    );
}

#[test]
fn history_pricing_integrates_with_the_marketplace() {
    use prc::pricing::history::HistoryAwarePricing;
    let (dataset, parts) = setup();
    let model = ChebyshevVariance::new(dataset.len());
    let mut pricing = HistoryAwarePricing::new(SqrtPrecisionPricing::new(1e4, model), model);
    let mut broker = DataBroker::new(FlatNetwork::from_partitions(parts, 41), 41);
    let mut ledger = TradeLedger::new();

    // A repeat customer pays marginal prices; the total equals the posted
    // price of their accumulated precision.
    let query = RangeQuery::new(70.0, 130.0).unwrap();
    let mut total_paid = 0.0;
    for _ in 0..4 {
        let accuracy = Accuracy::new(0.1, 0.6).unwrap();
        broker.answer(&QueryRequest::new(query, accuracy)).unwrap();
        let price = pricing.purchase("repeat-customer", "ozone:[70,130]", 0.1, 0.6);
        ledger.record("repeat-customer", 0.1, 0.6, price);
        total_paid += price;
    }
    use prc::pricing::history::PrecisionPricing;
    let held = pricing.held_precision("repeat-customer", "ozone:[70,130]");
    let posted_for_held = pricing.base().price_of_precision(held);
    assert!(
        (total_paid - posted_for_held).abs() < 1e-6,
        "telescoping broke: paid {total_paid} vs posted {posted_for_held}"
    );
    assert_eq!(ledger.len(), 4);
    // Marginal prices decrease for the concave family.
    let prices: Vec<f64> = ledger.records().iter().map(|r| r.price).collect();
    assert!(prices.windows(2).all(|w| w[1] < w[0]));
}
