//! Property-based tests for the arbitrage-avoiding pricing layer.
//!
//! Theorem 4.2 reduces arbitrage-freeness to two facts about the curve
//! `ψ` mapping delivered variance to price: it must fall as answers get
//! noisier (monotonicity — equivalently, price rises with the implied
//! per-answer ε), and no *split* of a purchase — averaging a bundle of
//! cheaper answers, or summing sub-range answers — may reach the target
//! precision below the posted price (subadditivity). The cache-reuse
//! guard extends the same posted-price discipline to answers served from
//! the broker's cache: reuse is allowed only when the buyer's payment
//! covers the delivered precision at the posted curve.

use proptest::prelude::*;

use prc::prelude::*;

const N: usize = 100_000;
const COEFF: f64 = 1e6;

fn model() -> ChebyshevVariance {
    ChebyshevVariance::new(N)
}

/// The per-answer Laplace ε implied by a delivered variance `v`: the
/// Laplace mechanism with scale `b` has variance `2b²`, so `ε = Δ/b`
/// grows as `1/√v` — tighter answers burn more budget.
fn implied_epsilon(v: f64) -> f64 {
    (2.0 / v).sqrt()
}

/// A named variance→price curve `ψ`.
type Curve = (&'static str, Box<dyn Fn(f64) -> f64>);

/// All three arbitrage-free families, as variance→price curves.
fn curves() -> [Curve; 3] {
    let inv = InverseVariancePricing::new(COEFF, model());
    let sqrt = SqrtPrecisionPricing::new(COEFF, model());
    let log = LogPrecisionPricing::new(COEFF, model());
    [
        ("inverse", Box::new(move |v| inv.price_of_variance(v))),
        ("sqrt", Box::new(move |v| sqrt.price_of_variance(v))),
        ("log", Box::new(move |v| log.price_of_variance(v))),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Price is monotone in the implied ε: a demand whose answer needs a
    /// larger per-answer budget never costs less. Exercises both the
    /// (α, δ) surface and the underlying variance curve.
    #[test]
    fn price_is_monotone_in_implied_epsilon(
        a1 in 0.01f64..0.5,
        d1 in 0.05f64..0.95,
        a2 in 0.01f64..0.5,
        d2 in 0.05f64..0.95,
    ) {
        let m = model();
        let (v1, v2) = (m.variance(a1, d1), m.variance(a2, d2));
        prop_assume!((v1 - v2).abs() > 1e-12 * v1.max(v2));
        let eps_ordered = implied_epsilon(v1) > implied_epsilon(v2);
        for (name, psi) in curves() {
            let (p1, p2) = (psi(v1), psi(v2));
            prop_assert!(
                eps_ordered == (p1 > p2),
                "{name}: implied-ε order ({}, {}) disagrees with price order ({p1}, {p2})",
                implied_epsilon(v1),
                implied_epsilon(v2),
            );
        }
    }

    /// Tightening either accuracy coordinate never lowers the posted
    /// price (monotonicity on the (α, δ) surface itself).
    #[test]
    fn price_is_monotone_in_each_accuracy_coordinate(
        alpha in 0.02f64..0.4,
        delta in 0.1f64..0.9,
        shrink in 0.5f64..1.0,
        boost in 1.0f64..1.1,
    ) {
        let pricing = InverseVariancePricing::new(COEFF, model());
        let base = pricing.price(alpha, delta);
        prop_assert!(pricing.price(alpha * shrink, delta) >= base);
        prop_assert!(pricing.price(alpha, (delta * boost).min(0.99)) >= base);
    }

    /// Averaging split (Definition 2.3 / Example 4.1): `m` equal, cheaper
    /// purchases whose equal-weight average reaches the target variance
    /// must together cost at least the posted target price.
    #[test]
    fn uniform_averaging_split_never_undercuts(
        alpha in 0.01f64..0.2,
        delta in 0.1f64..0.9,
        m in 2usize..7,
        u in 0.0f64..1.0,
    ) {
        let v_target = model().variance(alpha, delta);
        // Element variance m·V·u with u ≥ 1/m keeps each single purchase
        // cheaper than the target while the m-average reaches V·u ≤ V.
        let u = (1.0 / m as f64) + u * (1.0 - 1.0 / m as f64);
        let v_elem = m as f64 * v_target * u;
        for (name, psi) in curves() {
            let target_price = psi(v_target);
            let bundle_cost = m as f64 * psi(v_elem);
            prop_assert!(
                bundle_cost >= target_price * (1.0 - 1e-9),
                "{name}: bundle of {m} at v={v_elem} costs {bundle_cost} < {target_price}"
            );
        }
    }

    /// Mixed-variance averaging split: arbitrary element variances whose
    /// equal-weight average reaches the target still cost at least the
    /// posted price.
    #[test]
    fn mixed_averaging_split_never_undercuts(
        alpha in 0.01f64..0.2,
        delta in 0.1f64..0.9,
        factors in proptest::collection::vec(1.0f64..6.0, 2..7),
    ) {
        let v_target = model().variance(alpha, delta);
        let m = factors.len() as f64;
        // Element i gets variance fᵢ·V ≥ V (each single purchase cheaper);
        // the average has variance (ΣfᵢV)/m² — keep only valid attacks.
        let avg = factors.iter().sum::<f64>() * v_target / (m * m);
        prop_assume!(avg <= v_target);
        for (name, psi) in curves() {
            let target_price = psi(v_target);
            let bundle_cost: f64 = factors.iter().map(|f| psi(f * v_target)).sum();
            prop_assert!(
                bundle_cost >= target_price * (1.0 - 1e-9),
                "{name}: mixed bundle costs {bundle_cost} < {target_price}"
            );
        }
    }

    /// Range-split subadditivity: buying two sub-range answers and
    /// summing them delivers variance `v₁ + v₂`; asking for that combined
    /// precision directly never costs more than the two pieces.
    #[test]
    fn summing_subrange_answers_never_undercuts(
        a1 in 0.02f64..0.4,
        d1 in 0.1f64..0.9,
        a2 in 0.02f64..0.4,
        d2 in 0.1f64..0.9,
    ) {
        let m = model();
        let (v1, v2) = (m.variance(a1, d1), m.variance(a2, d2));
        for (name, psi) in curves() {
            prop_assert!(
                psi(v1 + v2) <= psi(v1) + psi(v2) + 1e-9,
                "{name}: whole-range price exceeds the split's total"
            );
        }
    }

    /// Cache-reuse path: the guard is reflexive (an identical cached
    /// answer is always reusable), and whenever it allows reuse the
    /// buyer's posted payment covers the delivered precision at the
    /// posted curve — reuse can never undercut `ψ`.
    #[test]
    fn cache_reuse_never_undercuts_the_posted_curve(
        ra in 0.02f64..0.4,
        rd in 0.1f64..0.9,
        ca in 0.02f64..0.4,
        cd in 0.1f64..0.9,
    ) {
        let guard = PostedPriceReuse::new(InverseVariancePricing::new(COEFF, model()), model());
        let requested = Demand::new(ra, rd);
        let cached = Demand::new(ca, cd);

        prop_assert!(guard.allows_reuse(requested, requested));

        if guard.allows_reuse(requested, cached) {
            prop_assert!(cached.at_least_as_strict_as(&requested));
            let paid = guard.posted_price(requested);
            let delivered = guard.pricing().price(ca, cd);
            prop_assert!(
                paid >= delivered * (1.0 - 1e-6),
                "reuse delivered a {delivered} answer for {paid}"
            );
        }
    }

    /// Strictly tighter cached answers are never given away: if the cache
    /// holds a meaningfully stricter answer than requested, the guard
    /// refuses (the buyer must pay the posted price for the upgrade).
    #[test]
    fn strictly_tighter_cached_answers_are_not_reused(
        alpha in 0.05f64..0.4,
        delta in 0.1f64..0.8,
        tighten in 0.02f64..0.5,
    ) {
        let guard = PostedPriceReuse::new(InverseVariancePricing::new(COEFF, model()), model());
        let requested = Demand::new(alpha, delta);
        let tighter_alpha = Demand::new(alpha * (1.0 - tighten), delta);
        let tighter_delta = Demand::new(alpha, delta + tighten * (0.95 - delta));
        prop_assert!(!guard.allows_reuse(requested, tighter_alpha));
        prop_assert!(!guard.allows_reuse(requested, tighter_delta));
    }
}
