//! Failure injection end to end: how the pipeline degrades when the IoT
//! network is unhealthy.

use prc::core::estimator::{RangeCountEstimator, RankCounting};
use prc::prelude::*;

fn partitions(k: usize, per_node: usize) -> Vec<Vec<f64>> {
    (0..k)
        .map(|i| (0..per_node).map(|j| (i * per_node + j) as f64).collect())
        .collect()
}

#[test]
fn dropout_biases_low_proportionally() {
    // Killing ~25% of the nodes should remove ~25% of a uniform count.
    let k = 40;
    let per_node = 250;
    let query = RangeQuery::new(0.0, 1e9).unwrap(); // everything
    let truth = (k * per_node) as f64;

    let mut net = FlatNetwork::from_partitions(partitions(k, per_node), 8);
    net.set_failure_plan(FailurePlan::new(0.25, 0.0, LossMode::Retransmit, 8));
    net.collect_samples(0.5);
    let est = RankCounting.estimate(net.station(), query);
    let surviving_fraction = net.station().total_population() as f64 / truth;
    assert!(
        (est / truth - surviving_fraction).abs() < 0.05,
        "estimate {est} should track surviving population {surviving_fraction}"
    );
    assert!(
        surviving_fraction < 0.95,
        "the plan should have killed nodes"
    );
}

#[test]
fn retransmit_loss_changes_cost_not_answers() {
    let parts = partitions(20, 400);
    let query = RangeQuery::new(1_000.0, 6_000.0).unwrap();

    let mut clean = FlatNetwork::from_partitions(parts.clone(), 4);
    clean.collect_samples(0.3);
    let clean_est = RankCounting.estimate(clean.station(), query);

    let mut lossy = FlatNetwork::from_partitions(parts, 4);
    lossy.set_failure_plan(FailurePlan::new(0.0, 0.4, LossMode::Retransmit, 99));
    lossy.collect_samples(0.3);
    let lossy_est = RankCounting.estimate(lossy.station(), query);

    assert_eq!(
        clean_est, lossy_est,
        "retransmission must not change the data"
    );
    assert!(
        lossy.meter().snapshot().messages > clean.meter().snapshot().messages,
        "retransmission must cost messages"
    );
}

#[test]
fn broker_still_answers_under_partial_failure() {
    let mut network = FlatNetwork::from_partitions(partitions(30, 300), 6);
    network.set_failure_plan(FailurePlan::new(0.15, 0.1, LossMode::Retransmit, 6));
    let mut broker = DataBroker::new(network, 6);
    let request = QueryRequest::new(
        RangeQuery::new(1_000.0, 8_000.0).unwrap(),
        Accuracy::new(0.15, 0.5).unwrap(),
    );
    let answer = broker.answer(&request).unwrap();
    assert!(answer.value.is_finite());
    // The broker's shape reflects only surviving nodes.
    assert!(broker.network().station().node_count() < 30);
}

#[test]
fn total_network_death_is_reported_not_panicked() {
    let mut network = FlatNetwork::from_partitions(partitions(5, 100), 7);
    let mut plan = FailurePlan::none();
    for i in 0..5 {
        plan.kill_node(prc::net::message::NodeId(i));
    }
    network.set_failure_plan(plan);
    let mut broker = DataBroker::new(network, 7);
    let request = QueryRequest::new(
        RangeQuery::new(0.0, 100.0).unwrap(),
        Accuracy::new(0.1, 0.5).unwrap(),
    );
    assert!(matches!(broker.answer(&request), Err(CoreError::NoSamples)));
}

#[test]
fn tree_network_failure_cuts_subtrees_end_to_end() {
    let mut tree = TreeNetwork::from_partitions(partitions(15, 200), 2, 5);
    let mut plan = FailurePlan::none();
    plan.kill_node(prc::net::message::NodeId(1));
    tree.set_failure_plan(plan);
    tree.collect_samples(0.5);
    // Node 1's subtree in a binary tree over 15 nodes: 1,3,4,7,8,9,10 — 7 nodes.
    assert_eq!(tree.station().node_count(), 8);
    let (count, messages, _) = tree.aggregate_exact_count(0.0, 1e9);
    assert_eq!(messages, 8);
    assert_eq!(count, 8 * 200);
}
