//! Property-based tests for the merged prefix-rank query index.
//!
//! The [`RankIndex`] contract is *bit-identity*: for any station with a
//! uniform sampling probability, `index.estimate(q)` must return exactly
//! the bits of the direct `RankCounting::estimate(station, q)` scan — the
//! broker switches between the two paths purely on size, so any
//! divergence would make released answers depend on an internal cutover.
//! These properties drive both paths over random populations, sampling
//! rates, duplicate-heavy values, and degenerate ranges.

use proptest::prelude::*;

use prc::net::base_station::BaseStation;
use prc::net::message::{NodeId, SampleEntry, SampleMessage};
use prc::prelude::*;

/// Builds a collected network from per-node value lists (sorted per node,
/// since rank order is value order) and returns its station snapshot.
fn collected_station(mut partitions: Vec<Vec<f64>>, seed: u64, p: f64) -> BaseStation {
    for node in &mut partitions {
        node.sort_by(f64::total_cmp);
    }
    let mut network = FlatNetwork::from_partitions(partitions, seed);
    network.collect_samples(p);
    network.station().clone()
}

/// Quantizes raw values into a narrow grid so duplicates are common
/// within and across nodes.
fn quantize(raw: Vec<f64>, buckets: f64) -> Vec<f64> {
    raw.into_iter().map(|v| (v * buckets).floor()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Indexed and scan estimates agree bit-for-bit over random
    /// populations, sampling rates, and ranges — including ranges fully
    /// below/above the support and point queries.
    #[test]
    fn index_is_bit_identical_to_the_scan(
        seed in 0u64..1_000,
        p in 0.05f64..1.0,
        sizes in proptest::collection::vec(0usize..40, 1..12),
        lower in -20.0f64..120.0,
        width in 0.0f64..140.0,
    ) {
        let partitions: Vec<Vec<f64>> = sizes
            .iter()
            .enumerate()
            .map(|(i, &s)| (0..s).map(|j| (i * 13 + j * 7) as f64 % 97.0).collect())
            .collect();
        let station = collected_station(partitions, seed, p);
        prop_assume!(station.total_population() > 0);
        let index = RankCounting.build_index(&station);
        prop_assert!(index.is_some(), "uniform station must build an index");
        let index = index.unwrap();
        let query = RangeQuery::new(lower, lower + width).unwrap();
        let indexed = index.estimate(query);
        let scanned = RankCounting.estimate(&station, query);
        prop_assert_eq!(
            indexed.to_bits(),
            scanned.to_bits(),
            "indexed {} vs scanned {} on [{}, {}]",
            indexed, scanned, lower, lower + width
        );
    }

    /// Duplicate-heavy values (a handful of distinct values across every
    /// node) cannot break the identity: partition-point cuts never split
    /// a run of numerically equal values, so merge tie order is moot.
    #[test]
    fn duplicate_heavy_values_keep_the_identity(
        seed in 0u64..1_000,
        p in 0.1f64..1.0,
        raw in proptest::collection::vec(0.0f64..1.0, 8..120),
        nodes in 2usize..8,
        pivot in 0.0f64..8.0,
    ) {
        let values = quantize(raw, 8.0); // only ~8 distinct values
        let partitions: Vec<Vec<f64>> = values
            .chunks(values.len().div_ceil(nodes))
            .map(<[f64]>::to_vec)
            .collect();
        let station = collected_station(partitions, seed, p);
        let index = RankCounting.build_index(&station).unwrap();
        // Query boundaries at and around the duplicated values.
        for (l, u) in [
            (pivot.floor(), pivot.floor()),     // point query on a duplicate
            (pivot.floor() - 0.5, pivot.floor() + 0.5),
            (-5.0, -1.0),                       // fully below support
            (9.0, 50.0),                        // fully above support
            (0.0, 8.0),                         // whole support
        ] {
            let query = RangeQuery::new(l, u).unwrap();
            prop_assert_eq!(
                index.estimate(query).to_bits(),
                RankCounting.estimate(&station, query).to_bits(),
                "range [{}, {}]", l, u
            );
        }
    }

    /// At p = 1 every sample is the whole population, so both paths must
    /// return the *exact true count* — bit-identical to each other and to
    /// the naive per-node float sum (whose arithmetic is exact integers).
    #[test]
    fn p_one_is_exact_and_matches_the_per_node_sum(
        seed in 0u64..1_000,
        sizes in proptest::collection::vec(0usize..30, 1..8),
        lower in -10.0f64..110.0,
        width in 0.0f64..120.0,
    ) {
        let partitions: Vec<Vec<f64>> = sizes
            .iter()
            .enumerate()
            .map(|(i, &s)| (0..s).map(|j| (i * 11 + j * 5) as f64 % 89.0).collect())
            .collect();
        let station = collected_station(partitions, seed, 1.0);
        prop_assume!(station.total_population() > 0);
        let index = RankCounting.build_index(&station).unwrap();
        let query = RangeQuery::new(lower, lower + width).unwrap();
        let per_node: f64 = station
            .node_samples()
            .map(|s| RankCounting.estimate_node(s, query))
            .sum();
        let truth: f64 = station
            .node_samples()
            .flat_map(|s| s.entries())
            .filter(|e| e.value >= lower && e.value <= lower + width)
            .count() as f64;
        prop_assert_eq!(index.estimate(query).to_bits(), per_node.to_bits());
        prop_assert_eq!(index.estimate(query).to_bits(), truth.to_bits());
    }

    /// Stations whose nodes report different sampling probabilities must
    /// decline to build; the estimator then runs the per-node fallback.
    #[test]
    fn heterogeneous_probabilities_decline_the_index(
        p1 in 0.1f64..0.5,
        bump in 0.01f64..0.4,
        n in 1usize..50,
    ) {
        let mut station = BaseStation::new();
        for (node, p) in [(0u32, p1), (1, p1 + bump)] {
            station.ingest(SampleMessage {
                node_id: NodeId(node),
                population_size: n,
                probability: p,
                entries: vec![SampleEntry { value: 1.0, rank: 1 }],
            });
        }
        prop_assert!(RankCounting.build_index(&station).is_none());
        // The fallback still answers (as the per-node sum).
        let query = RangeQuery::new(0.0, 2.0).unwrap();
        let expected: f64 = station
            .node_samples()
            .map(|s| RankCounting.estimate_node(s, query))
            .sum();
        prop_assert_eq!(
            RankCounting.estimate(&station, query).to_bits(),
            expected.to_bits()
        );
    }
}

proptest! {
    // Fewer cases: each one runs two full broker batches.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// End to end: a broker forced onto the indexed path releases the
    /// same bits as one forced onto the scan path, over random workloads.
    #[test]
    fn indexed_brokers_release_identical_bits(
        seed in 0u64..1_000,
        bounds in proptest::collection::vec(0.0f64..4_000.0, 2..12),
    ) {
        let partitions: Vec<Vec<f64>> = (0..6)
            .map(|i| (0..700).map(|j| (i * 700 + j) as f64).collect())
            .collect();
        let workload: Vec<QueryRequest> = bounds
            .chunks_exact(2)
            .map(|pair| {
                let (a, b) = (pair[0], pair[1]);
                QueryRequest::new(
                    RangeQuery::new(a.min(b), a.max(b)).unwrap(),
                    Accuracy::new(0.15, 0.5).unwrap(),
                )
            })
            .collect();
        let run = |threshold: usize| {
            let mut broker = DataBroker::new(
                FlatNetwork::from_partitions(partitions.clone(), seed),
                seed,
            );
            broker.set_index_threshold(threshold);
            broker
                .answer_batch(&workload)
                .answers
                .into_iter()
                .map(|r| r.unwrap().value.to_bits())
                .collect::<Vec<u64>>()
        };
        prop_assert_eq!(run(0), run(usize::MAX));
    }
}
