//! Property sweep over the fault matrix: dropout probability × message
//! loss rate × `LossMode` × driver.
//!
//! At every point of the matrix the estimator must degrade *gracefully*
//! (estimates stay finite and bounded, and the bias direction matches
//! the documented semantics: dead nodes remove exactly their population,
//! Drop-mode loss under-samples but never hides population, Retransmit
//! never changes data) and the cost-meter invariants of DESIGN.md §12
//! must hold. Because every failure decision is keyed by `(plan seed,
//! NodeId)`, the flat and threaded drivers must stay byte-identical at
//! every matrix point, and the tree driver's delivered set must be a
//! subset of the flat driver's with per-node identical sample state.

use proptest::prelude::*;
use proptest::test_runner::TestCaseError;

use prc::core::estimator::{RangeCountEstimator, RankCounting};
use prc::net::conformance::station_fingerprint;
use prc::prelude::*;

const NODES: usize = 12;
const PER_NODE: usize = 150;
const SCHEDULE: [f64; 2] = [0.3, 0.6];

fn partitions() -> Vec<Vec<f64>> {
    (0..NODES)
        .map(|i| (0..PER_NODE).map(|j| (i * PER_NODE + j) as f64).collect())
        .collect()
}

/// The §12 cost-meter invariants, checkable after any round.
fn check_cost_invariants<N: Network>(driver: &str, network: &N) -> Result<(), TestCaseError> {
    let snap = network.meter().snapshot();
    prop_assert_eq!(
        snap.samples,
        network.station().total_samples() as u64,
        "{}: metered samples vs station holdings",
        driver
    );
    prop_assert!(
        snap.free_messages <= snap.messages,
        "{}: free messages exceed total",
        driver
    );
    let attributed: u64 = network.meter().per_node_bytes().values().sum();
    prop_assert_eq!(
        attributed,
        snap.bytes,
        "{}: per-node bytes must sum to the total",
        driver
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn fault_matrix_degrades_gracefully(
        seed in 0u64..400,
        plan_seed in 0u64..400,
        dropout in 0.0f64..0.5,
        loss in 0.0f64..0.6,
        use_drop_mode in any::<bool>(),
    ) {
        let mode = if use_drop_mode { LossMode::Drop } else { LossMode::Retransmit };
        let plan = || FailurePlan::new(dropout, loss, mode, plan_seed);
        // Same plan seed with zero loss: per-node keying guarantees the
        // identical dead set, isolating the effect of message loss.
        let baseline_plan = || FailurePlan::new(dropout, 0.0, LossMode::Retransmit, plan_seed);

        let mut flat = FlatNetwork::from_partitions(partitions(), seed);
        flat.set_failure_plan(plan());
        let mut threaded = ThreadedNetwork::from_partitions(partitions(), seed);
        threaded.set_failure_plan(plan());
        let mut tree = TreeNetwork::from_partitions(partitions(), 2, seed);
        tree.set_failure_plan(plan());
        let mut baseline = FlatNetwork::from_partitions(partitions(), seed);
        baseline.set_failure_plan(baseline_plan());

        for &target in &SCHEDULE {
            flat.collect_samples(target);
            threaded.collect_samples(target);
            tree.collect_samples(target);
            baseline.collect_samples(target);
            check_cost_invariants("flat", &flat)?;
            check_cost_invariants("threaded", &threaded)?;
            check_cost_invariants("tree", &tree)?;
        }

        // Drivers agree byte-for-byte at every matrix point.
        prop_assert_eq!(
            station_fingerprint(flat.station()),
            station_fingerprint(threaded.station()),
            "flat and threaded diverged at dropout={} loss={} mode={:?}",
            dropout, loss, mode
        );
        prop_assert_eq!(flat.meter().snapshot(), threaded.meter().snapshot());

        // The tree's delivered set is a subset of the flat driver's
        // (a dead ancestor can only remove reporters), and every node it
        // did hear from holds identical state.
        for node in tree.station().node_samples() {
            let flat_node = flat.station().node_sample(node.node_id);
            prop_assert!(
                flat_node.is_some_and(|f| f == node),
                "tree node {:?} state diverged from flat",
                node.node_id
            );
        }

        // Estimates stay finite and bounded on every driver. A per-node
        // estimate never exceeds n_i and never falls below 2 - 2/p, so
        // the global estimate is bounded by the population and -2k/p.
        let query = RangeQuery::new(
            (NODES * PER_NODE) as f64 * 0.25,
            (NODES * PER_NODE) as f64 * 0.75,
        ).unwrap();
        let n = (NODES * PER_NODE) as f64;
        let lower_bound = -2.0 * NODES as f64 / SCHEDULE[1] - 1e-9;
        for (driver, station) in [
            ("flat", flat.station()),
            ("threaded", threaded.station()),
            ("tree", tree.station()),
        ] {
            let estimate = RankCounting.estimate(station, query);
            prop_assert!(estimate.is_finite(), "{}: estimate not finite", driver);
            prop_assert!(
                estimate <= n + 1e-9 && estimate >= lower_bound,
                "{}: estimate {} outside [{}, {}]",
                driver, estimate, lower_bound, n
            );
        }

        // Bias direction, dropout axis: dead nodes remove exactly their
        // population, so the full-support estimate equals the surviving
        // population — biased low in proportion to dropout, regardless
        // of message loss (Drop-mode loss never hides population).
        let full = RangeQuery::new(-1.0, n + 1.0).unwrap();
        let full_estimate = RankCounting.estimate(flat.station(), full);
        let surviving = flat.station().total_population() as f64;
        prop_assert!(
            (full_estimate - surviving).abs() < 1e-6,
            "full-support estimate {} must equal surviving population {}",
            full_estimate, surviving
        );

        // Bias direction, loss axis — against the same-dead-set baseline.
        prop_assert_eq!(
            flat.station().node_count(),
            baseline.station().node_count(),
            "loss must never change which nodes register"
        );
        prop_assert_eq!(
            flat.station().total_population(),
            baseline.station().total_population()
        );
        match mode {
            LossMode::Retransmit => {
                // Retransmission never changes data, only cost.
                prop_assert_eq!(
                    station_fingerprint(flat.station()),
                    station_fingerprint(baseline.station()),
                    "retransmit changed data at dropout={} loss={}",
                    dropout, loss
                );
                prop_assert_eq!(flat.meter().snapshot().lost_messages, 0);
                prop_assert!(
                    flat.meter().snapshot().messages >= baseline.meter().snapshot().messages
                );
            }
            LossMode::Drop => {
                // Unacknowledged loss under-samples the station.
                prop_assert!(
                    flat.station().total_samples() <= baseline.station().total_samples(),
                    "drop-mode loss must never add samples"
                );
            }
        }
    }
}
