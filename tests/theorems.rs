//! Statistical verification of the paper's theorems across crates.

use prc::core::accuracy::{achieved_delta, required_probability_clamped};
use prc::core::estimator::{RangeCountEstimator, RankCounting};
use prc::core::exact::range_count;
use prc::core::optimizer::{optimize, NetworkShape, OptimizerConfig};
use prc::prelude::*;

/// Theorem 3.3 end to end: sampling at the prescribed probability makes
/// the *sampling-only* estimate an (α, δ)-range counting.
#[test]
fn theorem_3_3_coverage_holds_empirically() {
    let k = 20;
    let per_node = 400;
    let n = k * per_node;
    let accuracy = Accuracy::new(0.07, 0.7).unwrap();
    let p = required_probability_clamped(accuracy, k, n).unwrap();
    assert!(p < 1.0, "test should exercise real sampling, got p = {p}");

    let partitions: Vec<Vec<f64>> = (0..k)
        .map(|i| (0..per_node).map(|j| (i * per_node + j) as f64).collect())
        .collect();
    let query = RangeQuery::new(1_000.0, 5_000.0).unwrap();
    let truth = partitions
        .iter()
        .map(|part| range_count(part, query))
        .sum::<usize>() as f64;

    let trials = 400;
    let mut hits = 0;
    for seed in 0..trials {
        let mut net = FlatNetwork::from_partitions(partitions.clone(), seed);
        net.collect_samples(p);
        let est = RankCounting.estimate(net.station(), query);
        if (est - truth).abs() <= accuracy.alpha() * n as f64 {
            hits += 1;
        }
    }
    let rate = hits as f64 / trials as f64;
    assert!(
        rate >= accuracy.delta(),
        "Theorem 3.3 violated: coverage {rate} < δ = {}",
        accuracy.delta()
    );
}

/// Theorem 3.2: the global estimator's empirical variance respects 8k/p².
#[test]
fn theorem_3_2_variance_bound_holds() {
    let k = 6;
    let per_node = 500;
    let p = 0.2;
    let partitions: Vec<Vec<f64>> = (0..k)
        .map(|i| (0..per_node).map(|j| (i + j * k) as f64).collect())
        .collect();
    let query = RangeQuery::new(500.0, 2_300.0).unwrap();
    let truth = partitions
        .iter()
        .map(|part| range_count(part, query))
        .sum::<usize>() as f64;

    let trials = 2_500;
    let mut sum = 0.0;
    let mut sum_sq = 0.0;
    for seed in 0..trials {
        let mut net = FlatNetwork::from_partitions(partitions.clone(), seed + 1_000);
        net.collect_samples(p);
        let est = RankCounting.estimate(net.station(), query);
        sum += est;
        sum_sq += (est - truth).powi(2);
    }
    let mean = sum / trials as f64;
    let mse = sum_sq / trials as f64;
    let bound = 8.0 * k as f64 / (p * p);
    assert!(
        (mean - truth).abs() < 3.0,
        "bias too large: mean {mean} vs {truth}"
    );
    assert!(mse <= bound * 1.1, "MSE {mse} exceeds bound {bound}");
}

/// Lemma 3.4 consistency: the optimizer's effective ε′ equals the
/// amplification of its base ε at the sampling probability.
#[test]
fn lemma_3_4_is_applied_consistently() {
    let shape = NetworkShape::new(50, 17_568);
    let accuracy = Accuracy::new(0.1, 0.6).unwrap();
    for p in [0.1, 0.3, 0.7] {
        let plan = optimize(accuracy, p, shape, &OptimizerConfig::default()).unwrap();
        let expected = amplify(plan.epsilon, p).unwrap();
        assert!((plan.effective_epsilon.value() - expected.value()).abs() < 1e-12);
        assert!(plan.effective_epsilon.value() < plan.epsilon.value());
    }
}

/// The optimizer's composed guarantee: running the *whole* two-phase
/// pipeline (sampling at p, then Laplace noise at the planned ε) meets the
/// customer's (α, δ) demand empirically.
#[test]
fn optimizer_composition_meets_the_accuracy_demand() {
    let k = 20;
    let per_node = 500;
    let n = k * per_node;
    let accuracy = Accuracy::new(0.06, 0.6).unwrap();
    let p = 0.35;
    let shape = NetworkShape::new(k, n);
    let plan = optimize(accuracy, p, shape, &OptimizerConfig::default()).unwrap();

    let partitions: Vec<Vec<f64>> = (0..k)
        .map(|i| (0..per_node).map(|j| (i * per_node + j) as f64).collect())
        .collect();
    let query = RangeQuery::new(2_000.0, 8_000.0).unwrap();
    let truth = partitions
        .iter()
        .map(|part| range_count(part, query))
        .sum::<usize>() as f64;

    use rand::SeedableRng;
    let noise = Laplace::centered(plan.noise_scale).unwrap();
    let mut rng = rand::rngs::StdRng::seed_from_u64(77);
    let trials = 500;
    let mut hits = 0;
    for seed in 0..trials {
        let mut net = FlatNetwork::from_partitions(partitions.clone(), seed + 40_000);
        net.collect_samples(p);
        let est = RankCounting.estimate(net.station(), query) + noise.sample(&mut rng);
        if (est - truth).abs() <= accuracy.alpha() * n as f64 {
            hits += 1;
        }
    }
    let rate = hits as f64 / trials as f64;
    assert!(
        rate >= accuracy.delta(),
        "two-phase guarantee violated: {rate} < {}",
        accuracy.delta()
    );
}

/// Theorem 4.2 + Definition 2.3 cross-check: the canonical price passes
/// both the literal property checker and the operational attack simulator,
/// on the same model.
#[test]
fn pricing_theorem_and_operational_definitions_agree_on_the_canonical_price() {
    use prc::pricing::theorem::{check_theorem_4_2, TheoremCheckConfig};
    let model = ChebyshevVariance::new(17_568);
    let pricing = InverseVariancePricing::new(1e9, model);
    assert!(check_theorem_4_2(&pricing, &model, &TheoremCheckConfig::default()).is_empty());
    let targets = [(0.03, 0.9), (0.1, 0.5)];
    assert!(certify(&pricing, &model, &targets, &AttackConfig::default()).is_ok());
}

/// δ′(p) really is the inverse of Theorem 3.3's probability bound.
#[test]
fn accuracy_calculus_round_trips() {
    let k = 50;
    let n = 17_568;
    for (alpha, delta) in [(0.05, 0.5), (0.1, 0.8), (0.3, 0.2)] {
        let accuracy = Accuracy::new(alpha, delta).unwrap();
        let p = required_probability_clamped(accuracy, k, n).unwrap();
        if p < 1.0 {
            let d = achieved_delta(p, alpha, k, n).unwrap();
            assert!((d - delta).abs() < 1e-9, "({alpha}, {delta}): δ′ = {d}");
        }
    }
}
