//! Streaming/dynamic integration: outage-ridden streams, sliding-window
//! monitoring under failure, and dynamic node membership end to end.

use prc::core::estimator::{RangeCountEstimator, RankCounting};
use prc::core::monitor::{ContinuousMonitor, MonitorConfig};
use prc::data::stream::{SlidingWindow, StreamReplayer};
use prc::net::trace::Tracer;
use prc::prelude::*;

#[test]
fn monitor_survives_an_outage_ridden_stream() {
    // Sensor outages punch irregular gaps into the stream; the window and
    // monitor must keep functioning across them.
    let dataset = CityPulseGenerator::new(3)
        .record_count(4_000)
        .outages(0.01, 15.0)
        .generate();
    assert!(dataset.len() < 4_000, "outages must have dropped records");

    let mut replay = StreamReplayer::new(&dataset);
    let mut monitor = ContinuousMonitor::new(MonitorConfig {
        query: RangeQuery::new(60.0, 140.0).unwrap(),
        accuracy: Accuracy::new(0.2, 0.5).unwrap(),
        index: AirQualityIndex::Ozone,
        window_seconds: 12 * 3_600,
        nodes: 6,
        session_budget: Epsilon::new(50.0).unwrap(),
        seed: 3,
    });
    let mut epochs = 0;
    while !replay.is_exhausted() && epochs < 8 {
        monitor.ingest(replay.advance_by(400));
        if monitor.window_size() > 0 {
            let result = monitor.answer_epoch().unwrap();
            assert!(result.answer.value.is_finite());
            epochs += 1;
        }
    }
    assert!(epochs >= 6, "only {epochs} epochs ran");
}

#[test]
fn sliding_window_tolerates_gap_larger_than_span() {
    // A gap longer than the window must fully flush it.
    let mut window = SlidingWindow::new(3_600);
    let mk = |ts: i64| prc::data::record::PollutionRecord {
        timestamp: prc::data::time::Timestamp(ts),
        sensor_id: 0,
        ozone: 1.0,
        particulate_matter: 1.0,
        carbon_monoxide: 1.0,
        sulfur_dioxide: 1.0,
        nitrogen_dioxide: 1.0,
    };
    window.ingest_all([mk(0), mk(300), mk(600)]);
    assert_eq!(window.len(), 3);
    // Jump 2 hours — far beyond the 1-hour span.
    window.ingest(mk(7_800));
    assert_eq!(window.len(), 1);
}

#[test]
fn dynamic_nodes_join_a_live_marketplace() {
    let dataset = CityPulseGenerator::new(11).record_count(4_000).generate();
    let values = dataset.values(AirQualityIndex::CarbonMonoxide);
    let (early, late) = values.split_at(3_000);
    let parts = prc::data::partition::partition_values(early, 10, PartitionStrategy::RoundRobin);

    let mut network = FlatNetwork::from_partitions(parts, 9);
    let tracer = Tracer::new(1_024);
    network.set_tracer(tracer.clone());
    network.collect_samples(0.4);
    let query = RangeQuery::new(40.0, 90.0).unwrap();
    let before = RankCounting.estimate(network.station(), query);

    // Two late-joining devices bring the remaining records.
    let (a, b) = late.split_at(late.len() / 2);
    network.add_node(a.to_vec(), 9);
    network.add_node(b.to_vec(), 9);
    network.collect_samples(0.4);
    let after = RankCounting.estimate(network.station(), query);

    let truth_before = early
        .iter()
        .filter(|&&v| (40.0..=90.0).contains(&v))
        .count() as f64;
    let truth_after = values
        .iter()
        .filter(|&&v| (40.0..=90.0).contains(&v))
        .count() as f64;
    assert!((before - truth_before).abs() < 0.15 * truth_before.max(200.0));
    assert!((after - truth_after).abs() < 0.15 * truth_after.max(200.0));
    assert!(after > before, "the estimate must grow with the population");

    // The trace shows exactly two extra deliveries in round 2.
    let events = tracer.events();
    let round_markers: Vec<_> = events
        .iter()
        .filter(|e| e.kind() == "round_completed")
        .collect();
    assert_eq!(round_markers.len(), 2);
    let second_round_deliveries = events
        .iter()
        .skip_while(|e| e.kind() != "round_completed")
        .skip(1)
        .filter(|e| e.kind() == "batch_delivered")
        .count();
    assert_eq!(
        second_round_deliveries, 2,
        "only the newcomers ship in round 2"
    );
}

#[test]
fn windowed_broker_answers_match_window_truth() {
    // Build datasets from window snapshots and verify the broker answers
    // against the *window's* truth, not the stream's.
    let dataset = CityPulseGenerator::new(21).record_count(2_000).generate();
    let mut replay = StreamReplayer::new(&dataset);
    let mut window = SlidingWindow::new(8 * 3_600);
    let mut checked = 0;
    for step in 0..5 {
        window.ingest_all(replay.advance_by(400));
        let snapshot = window.snapshot();
        let values = snapshot.values(AirQualityIndex::Ozone);
        let truth = values
            .iter()
            .filter(|&&v| (70.0..=130.0).contains(&v))
            .count() as f64;
        if truth < 10.0 {
            continue;
        }
        let network = FlatNetwork::from_dataset(
            &snapshot,
            AirQualityIndex::Ozone,
            5,
            PartitionStrategy::RoundRobin,
            21 + step,
        );
        let mut broker = DataBroker::new(network, 21 + step);
        // δ = 0.9: at most 10% of answers may exceed αn, with
        // exponentially decaying tails beyond it — 3αn is a safe test
        // bound (exceedance probability < 0.1%).
        let accuracy = Accuracy::new(0.2, 0.9).unwrap();
        let answer = broker
            .answer(&QueryRequest::new(
                RangeQuery::new(70.0, 130.0).unwrap(),
                accuracy,
            ))
            .unwrap();
        let allowance = accuracy.alpha() * snapshot.len() as f64;
        assert!(
            (answer.value - truth).abs() <= 3.0 * allowance + 30.0,
            "step {step}: answer {} vs window truth {truth} (allowance {allowance})",
            answer.value
        );
        checked += 1;
    }
    assert!(checked >= 3, "too few windows checked: {checked}");
}
