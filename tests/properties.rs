//! Cross-crate property-based tests (proptest).

use proptest::prelude::*;

use prc::core::estimator::{BasicCounting, RangeCountEstimator, RankCounting};
use prc::core::exact::{range_count, range_count_sorted};
use prc::core::optimizer::{optimize, NetworkShape, OptimizerConfig};
use prc::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// With p = 1 every estimator equals the exact count on arbitrary
    /// data and arbitrary query ranges, including duplicates and
    /// out-of-support ranges.
    #[test]
    fn estimators_are_exact_at_full_sampling(
        mut values in proptest::collection::vec(-1_000.0f64..1_000.0, 1..200),
        k in 1usize..8,
        l in -1_200.0f64..1_200.0,
        width in 0.0f64..2_000.0,
        seed in any::<u64>(),
    ) {
        // Round to coarse grid to force duplicates frequently.
        for v in &mut values {
            *v = (*v / 10.0).round() * 10.0;
        }
        let query = RangeQuery::new(l, l + width).unwrap();
        let truth = range_count(&values, query) as f64;
        let parts = prc::data::partition::partition_values(&values, k, PartitionStrategy::RoundRobin);
        let mut net = FlatNetwork::from_partitions(parts, seed);
        net.collect_samples(1.0);
        prop_assert_eq!(RankCounting.estimate(net.station(), query), truth);
        prop_assert_eq!(BasicCounting.estimate(net.station(), query), truth);
    }

    /// Exact counting agrees between the O(n) scan and the binary search.
    #[test]
    fn exact_counts_agree(
        mut values in proptest::collection::vec(-100.0f64..100.0, 0..300),
        l in -120.0f64..120.0,
        width in 0.0f64..240.0,
    ) {
        let query = RangeQuery::new(l, l + width).unwrap();
        let scan = range_count(&values, query);
        values.sort_by(|a, b| a.partial_cmp(b).unwrap());
        prop_assert_eq!(scan, range_count_sorted(&values, query));
    }

    /// The perturbation plan always satisfies problem (3)'s constraints,
    /// for any feasible (α, δ, p) combination.
    #[test]
    fn optimizer_plans_are_always_feasible(
        alpha in 0.02f64..0.5,
        delta in 0.1f64..0.9,
        p in 0.05f64..1.0,
        k in 5usize..100,
    ) {
        let n = 17_568;
        let accuracy = Accuracy::new(alpha, delta).unwrap();
        let shape = NetworkShape::new(k, n);
        match optimize(accuracy, p, shape, &OptimizerConfig::default()) {
            Ok(plan) => {
                prop_assert!(plan.alpha_prime > 0.0 && plan.alpha_prime < alpha);
                prop_assert!(plan.delta_prime > delta && plan.delta_prime <= 1.0);
                prop_assert!(plan.epsilon.value() > 0.0);
                prop_assert!(plan.effective_epsilon.value() <= plan.epsilon.value());
                prop_assert!(plan.noise_scale > 0.0);
                // Composed guarantee: δ′ · Pr[|noise| ≤ (α−α′)n] ≥ δ.
                let noise = Laplace::centered(plan.noise_scale).unwrap();
                let mass = noise.central_probability((alpha - plan.alpha_prime) * n as f64);
                prop_assert!(plan.delta_prime * mass >= delta - 1e-9);
            }
            Err(CoreError::InfeasibleAccuracy { required_probability, .. }) => {
                // The hint must genuinely be more demanding than what we had.
                prop_assert!(required_probability > p || required_probability == 1.0);
            }
            Err(e) => prop_assert!(false, "unexpected error {e}"),
        }
    }

    /// Privacy amplification: ε′ ≤ ε always, with equality only at p = 1.
    #[test]
    fn amplification_never_weakens(e in 0.001f64..10.0, p in 0.0f64..1.0) {
        let eps = Epsilon::new(e).unwrap();
        let amplified = amplify(eps, p).unwrap();
        prop_assert!(amplified.value() <= e + 1e-12);
        if p < 1.0 {
            prop_assert!(amplified.value() < e);
        }
    }

    /// The Laplace CDF and quantile are inverse everywhere.
    #[test]
    fn laplace_quantile_inverts_cdf(
        loc in -100.0f64..100.0,
        scale in 0.01f64..50.0,
        q in 0.001f64..0.999,
    ) {
        let d = Laplace::new(loc, scale).unwrap();
        prop_assert!((d.cdf(d.quantile(q)) - q).abs() < 1e-9);
    }

    /// Compliant pricing functions are monotone and arbitrage-free under
    /// uniform m-bundles for arbitrary parameters.
    #[test]
    fn compliant_prices_resist_uniform_bundles(
        n in 100usize..100_000,
        c in 0.1f64..1e6,
        alpha in 0.01f64..0.5,
        delta in 0.05f64..0.95,
        m in 2usize..30,
    ) {
        let model = ChebyshevVariance::new(n);
        let inv = InverseVariancePricing::new(c, model);
        let sqrt = SqrtPrecisionPricing::new(c, model);
        let v = model.variance(alpha, delta);
        // Buying m answers of variance m·v and averaging reaches v.
        for (single, bundle) in [
            (inv.price_of_variance(v), m as f64 * inv.price_of_variance(m as f64 * v)),
            (sqrt.price_of_variance(v), m as f64 * sqrt.price_of_variance(m as f64 * v)),
        ] {
            prop_assert!(bundle >= single * (1.0 - 1e-9),
                "uniform bundle breaks arbitrage: {bundle} < {single}");
        }
    }

    /// Mixed bundles cannot beat the inverse-variance price either:
    /// with Σ 1/k_i ≥ ... the paper's sufficiency argument, checked
    /// numerically on random bundles.
    #[test]
    fn inverse_variance_resists_mixed_bundles(
        n in 1_000usize..50_000,
        factors in proptest::collection::vec(1.0f64..3.0, 4..12),
    ) {
        let model = ChebyshevVariance::new(n);
        let pricing = InverseVariancePricing::new(1e6, model);
        let target_v = 1_000.0;
        let m = factors.len() as f64;
        // Bundle of variances k_i · target_v.
        let combined: f64 = factors.iter().map(|k| k * target_v).sum::<f64>() / (m * m);
        prop_assume!(combined <= target_v); // only meaningful attacks
        let bundle_cost: f64 = factors.iter().map(|k| pricing.price_of_variance(k * target_v)).sum();
        prop_assert!(bundle_cost >= pricing.price_of_variance(target_v) * (1.0 - 1e-9));
    }

    /// Dataset CSV round trip for arbitrary record contents.
    #[test]
    fn csv_round_trips(
        seed in any::<u64>(),
        count in 1usize..60,
    ) {
        let ds = CityPulseGenerator::new(seed).record_count(count).generate();
        let mut buf = Vec::new();
        prc::data::csv::write_csv(&mut buf, &ds).unwrap();
        let back = prc::data::csv::read_csv(buf.as_slice()).unwrap();
        prop_assert_eq!(back.len(), ds.len());
        for (a, b) in ds.iter().zip(back.iter()) {
            prop_assert_eq!(a.timestamp, b.timestamp);
            prop_assert!((a.ozone - b.ozone).abs() < 1e-9);
        }
    }

    /// Sampling top-up keeps per-rank uniqueness for any probability path.
    #[test]
    fn top_up_never_duplicates_ranks(
        steps in proptest::collection::vec(0.01f64..1.0, 1..6),
        size in 1usize..500,
        seed in any::<u64>(),
    ) {
        let mut net = FlatNetwork::from_partitions(
            vec![(0..size).map(|i| i as f64).collect()],
            seed,
        );
        for &p in &steps {
            net.collect_samples(p);
        }
        let station = net.station();
        let sample = station.node_samples().next().unwrap();
        let mut ranks: Vec<u32> = sample.entries().iter().map(|e| e.rank).collect();
        let len = ranks.len();
        ranks.dedup();
        prop_assert_eq!(ranks.len(), len);
        // Probability is the max of the path.
        let expected = steps.iter().cloned().fold(0.0f64, f64::max);
        prop_assert!((sample.probability - expected).abs() < 1e-12);
    }
}
