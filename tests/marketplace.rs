//! Marketplace-level integration: broker + pricing + adversaries + budget.

use prc::prelude::*;

fn marketplace_network(seed: u64) -> (Dataset, FlatNetwork) {
    let dataset = CityPulseGenerator::new(seed).record_count(6_000).generate();
    let network = FlatNetwork::from_dataset(
        &dataset,
        AirQualityIndex::NitrogenDioxide,
        30,
        PartitionStrategy::RoundRobin,
        seed,
    );
    (dataset, network)
}

#[test]
fn live_averaging_attack_never_saves_money_under_compliant_pricing() {
    // The adversary buys m loose answers whose averaged variance matches a
    // strict answer, for several (m, target) combinations; under π = c/V
    // the bundle can never be cheaper.
    let (dataset, network) = marketplace_network(1);
    let pricing = InverseVariancePricing::new(1e9, ChebyshevVariance::new(dataset.len()));
    let mut broker = DataBroker::new(network, 1);
    let query = RangeQuery::new(60.0, 110.0).unwrap();

    for m in [2usize, 4, 9, 16] {
        let target = Accuracy::new(0.02, 0.8).unwrap();
        // Loose accuracy with m× the variance: α scaled by √m.
        let loose_alpha = (target.alpha() * (m as f64).sqrt()).min(0.95);
        let loose = Accuracy::new(loose_alpha, target.delta()).unwrap();

        let mut bundle = AnswerBundle::new();
        for _ in 0..m {
            bundle.push(broker.answer(&QueryRequest::new(query, loose)).unwrap());
        }
        let single_price = pricing.price(target.alpha(), target.delta());
        let bundle_price = m as f64 * pricing.price(loose.alpha(), loose.delta());
        assert!(
            bundle_price >= single_price * (1.0 - 1e-9),
            "m={m}: bundle {bundle_price} undercuts single {single_price}"
        );
    }
}

#[test]
fn broken_pricing_is_exploitable_in_the_live_marketplace() {
    let (_, network) = marketplace_network(2);
    let broken = LinearDeltaPricing::new(10.0);
    let mut broker = DataBroker::new(network, 2);
    let query = RangeQuery::new(60.0, 110.0).unwrap();

    // LinearDelta charges c·δ/α, so the cheap axis is confidence: buy m
    // nearly-worthless-confidence answers (δ = 0.01) at slightly looser α
    // and average. Their combined variance (αn)²(1−0.01)/m beats the
    // target's (αn)²(1−0.8) once m ≥ 5, at a tiny fraction of the price.
    let target = Accuracy::new(0.05, 0.8).unwrap();
    let m = 6;
    let loose = Accuracy::new(target.alpha() * 1.01, 0.01).unwrap();
    let model = ChebyshevVariance::new(6_000);
    assert!(
        model.variance(loose.alpha(), loose.delta()) / m as f64
            <= model.variance(target.alpha(), target.delta()),
        "bundle must reach the target variance"
    );
    let mut bundle = AnswerBundle::new();
    for _ in 0..m {
        bundle.push(broker.answer(&QueryRequest::new(query, loose)).unwrap());
    }
    let single_price = broken.price(target.alpha(), target.delta());
    let bundle_price = m as f64 * broken.price(loose.alpha(), loose.delta());
    assert!(
        bundle_price < single_price,
        "the broken price should be exploitable: bundle {bundle_price} vs single {single_price}"
    );
}

#[test]
fn ledger_tracks_a_full_trading_session() {
    let (dataset, network) = marketplace_network(3);
    let pricing = InverseVariancePricing::new(1e8, ChebyshevVariance::new(dataset.len()));
    let mut broker = DataBroker::new(network, 3);
    let mut ledger = TradeLedger::new();

    let buyers = ["alice", "bob", "alice", "carol", "bob", "alice"];
    let demands = [
        (0.05, 0.8),
        (0.1, 0.6),
        (0.2, 0.5),
        (0.03, 0.9),
        (0.15, 0.7),
        (0.08, 0.75),
    ];
    for (buyer, (alpha, delta)) in buyers.iter().zip(demands) {
        let request = QueryRequest::new(
            RangeQuery::new(50.0, 120.0).unwrap(),
            Accuracy::new(alpha, delta).unwrap(),
        );
        let answer = broker.answer(&request).unwrap();
        assert!(answer.value.is_finite());
        ledger.record(buyer, alpha, delta, pricing.price(alpha, delta));
    }
    assert_eq!(ledger.len(), 6);
    let by_buyer = ledger.revenue_by_buyer();
    assert_eq!(by_buyer.len(), 3);
    let total: f64 = by_buyer.values().sum();
    assert!((total - ledger.total_revenue()).abs() < 1e-9);
    assert!(ledger.buyer_spend("alice") > ledger.buyer_spend("bob"));
}

#[test]
fn privacy_budget_limits_a_trading_session() {
    let (_, network) = marketplace_network(4);
    let mut broker = DataBroker::new(network, 4);
    let request = QueryRequest::new(
        RangeQuery::new(50.0, 120.0).unwrap(),
        Accuracy::new(0.1, 0.6).unwrap(),
    );
    // Probe cost, then allow exactly three answers.
    let probe = broker.answer(&request).unwrap();
    let unit = probe.plan.effective_epsilon.value();
    broker.set_privacy_budget(Epsilon::new(unit * 3.2).unwrap());

    let mut served = 0;
    for _ in 0..10 {
        if broker.answer(&request).is_ok() {
            served += 1;
        }
    }
    assert_eq!(served, 3, "budget should admit exactly three answers");
    // Not fully exhausted (0.2 units remain) but too little for another answer.
    let remaining = broker.accountant().unwrap().remaining().value();
    assert!(
        remaining < unit,
        "remaining {remaining} should not fit another answer"
    );
}

#[test]
fn effective_epsilon_is_what_the_accountant_spends() {
    let (_, network) = marketplace_network(5);
    let mut broker = DataBroker::new(network, 5);
    broker.set_privacy_budget(Epsilon::new(10.0).unwrap());
    let request = QueryRequest::new(
        RangeQuery::new(50.0, 120.0).unwrap(),
        Accuracy::new(0.1, 0.6).unwrap(),
    );
    let a1 = broker.answer(&request).unwrap();
    let a2 = broker.answer(&request).unwrap();
    let spent = broker.accountant().unwrap().spent().value();
    let expected = a1.plan.effective_epsilon.value() + a2.plan.effective_epsilon.value();
    assert!((spent - expected).abs() < 1e-12);
}
