//! Property-based tests for the batched query engine.
//!
//! The engine's contract is *bit-identity*: the Eytzinger descent, the
//! sorted-batch sweep, and the plain two-`partition_point` baseline must
//! resolve exactly the same boundary indices on any sorted array — so
//! every downstream `(ΣA, ΣB)` aggregate, and therefore every released
//! answer, is independent of which resolver ran and of how a driver
//! chunked the batch across workers. The sweep drives random arrays
//! (duplicate-heavy, empty, all-equal, zero-valued samples), bounds
//! including explicit signed zeros, chunk widths standing in for worker
//! counts 1..=8, segmented indexes through 1..=5 delta rounds, and the
//! three network drivers against each other.

use proptest::prelude::*;
use proptest::test_runner::TestCaseError;

use prc::core::estimator::engine::{boundary_ranks, resolve_batch, EytzingerSearcher};
use prc::net::base_station::BaseStation;
use prc::prelude::*;

/// Builds a collected network from per-node value lists (sorted per
/// node, since rank order is value order) and returns its station.
fn collected_station(mut partitions: Vec<Vec<f64>>, seed: u64, p: f64) -> BaseStation {
    for node in &mut partitions {
        node.sort_by(f64::total_cmp);
    }
    let mut network = FlatNetwork::from_partitions(partitions, seed);
    network.collect_samples(p);
    network.station().clone()
}

/// Quantizes raw values into a narrow grid so duplicates are common.
fn quantize(raw: &[f64], buckets: f64) -> Vec<f64> {
    raw.iter().map(|v| (v * buckets).floor()).collect()
}

/// A query bound: usually a value from the wrapped range, one time in
/// five an explicit signed zero. `-0.0` and `+0.0` are distinct under
/// `total_cmp` but equal under the resolution predicates — the sweep's
/// probe sort must collapse them (the original keys stranded its
/// forward-only cursor).
#[derive(Debug, Clone)]
struct SignedBound(std::ops::Range<f64>);

impl Strategy for SignedBound {
    type Value = f64;

    fn generate(&self, rng: &mut proptest::test_runner::TestRng) -> f64 {
        match rng.next_u64() % 10 {
            0 => 0.0,
            1 => -0.0,
            _ => self.0.generate(rng),
        }
    }
}

fn signed_bound(range: std::ops::Range<f64>) -> SignedBound {
    SignedBound(range)
}

/// Appends `zeros` zero-valued samples (alternating sign) so signed-zero
/// bounds land *on* stored values, then re-sorts by `total_cmp`.
fn with_zero_samples(mut values: Vec<f64>, zeros: usize) -> Vec<f64> {
    values.extend((0..zeros).map(|i| if i % 2 == 0 { 0.0 } else { -0.0 }));
    values.sort_by(f64::total_cmp);
    values
}

/// Query batch probing below, inside, across, and above the support,
/// built from consecutive pairs of a flat bound list: each pair yields
/// the spanning range plus a point query pinned to the integer grid
/// (where quantized values live, so boundaries land *on* duplicates).
fn queries_from(bounds: &[f64]) -> Vec<RangeQuery> {
    bounds
        .chunks_exact(2)
        .flat_map(|pair| {
            let (lower, upper) = (pair[0].min(pair[1]), pair[0].max(pair[1]));
            let pivot = lower.floor();
            [
                RangeQuery::new(lower, upper).expect("ordered bounds"),
                RangeQuery::new(pivot, pivot).expect("point query"),
            ]
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The Eytzinger descent returns exactly `partition_point`'s indices
    /// on any sorted array — duplicate-heavy, empty, or all-equal — for
    /// probes on, between, below, and above the stored values.
    #[test]
    fn eytzinger_matches_partition_point(
        raw in proptest::collection::vec(-1.0f64..1.0, 0..200),
        buckets in 1.0f64..24.0,
        probes in proptest::collection::vec(signed_bound(-30.0f64..30.0), 1..40),
        zeros in 0usize..5,
    ) {
        let values = with_zero_samples(quantize(&raw, buckets), zeros);
        let searcher = EytzingerSearcher::from_sorted(&values);
        prop_assert_eq!(searcher.len(), values.len());
        for &x in &probes {
            prop_assert_eq!(
                searcher.lower_bound(x),
                values.partition_point(|&v| v < x),
                "lower_bound({}) over {} values", x, values.len()
            );
            prop_assert_eq!(
                searcher.upper_bound(x),
                values.partition_point(|&v| v <= x),
                "upper_bound({}) over {} values", x, values.len()
            );
        }
    }

    /// An all-equal array is the degenerate worst case for both the
    /// descent (every comparison ties) and the gallop (one run): both
    /// still land on the exact partition points.
    #[test]
    fn all_equal_arrays_resolve_exactly(
        value in -5.0f64..5.0,
        len in 0usize..120,
        bounds in proptest::collection::vec(signed_bound(-10.0f64..10.0), 2..24),
    ) {
        let values = vec![value; len];
        let searcher = EytzingerSearcher::from_sorted(&values);
        let queries = queries_from(&bounds);
        let resolved = resolve_batch(&values, &queries);
        for (i, &query) in queries.iter().enumerate() {
            let (pos_l, pos_u) = boundary_ranks(&values, query);
            prop_assert_eq!(searcher.boundary_ranks(query), (pos_l, pos_u));
            prop_assert_eq!((resolved.pos_l[i], resolved.pos_u[i]), (pos_l, pos_u));
        }
    }

    /// The sorted-batch sweep scatters exactly the baseline's indices
    /// back into submission order, and chunking the batch (how a driver
    /// splits it across 1..=8 workers) never changes a single position.
    #[test]
    fn sweep_is_baseline_exact_and_chunk_invariant(
        raw in proptest::collection::vec(-1.0f64..1.0, 0..160),
        buckets in 1.0f64..16.0,
        bounds in proptest::collection::vec(signed_bound(-20.0f64..20.0), 2..64),
        zeros in 0usize..5,
    ) {
        let values = with_zero_samples(quantize(&raw, buckets), zeros);
        let queries = queries_from(&bounds);

        let whole = resolve_batch(&values, &queries);
        for (i, &query) in queries.iter().enumerate() {
            let (pos_l, pos_u) = boundary_ranks(&values, query);
            prop_assert_eq!(
                (whole.pos_l[i], whole.pos_u[i]),
                (pos_l, pos_u),
                "query {} of {}", i, queries.len()
            );
        }

        for workers in 1usize..=8 {
            let chunk_len = queries.len().div_ceil(workers);
            let mut pos_l = Vec::new();
            let mut pos_u = Vec::new();
            for chunk in queries.chunks(chunk_len) {
                let part = resolve_batch(&values, chunk);
                pos_l.extend(part.pos_l);
                pos_u.extend(part.pos_u);
            }
            prop_assert_eq!(&pos_l, &whole.pos_l, "{} workers", workers);
            prop_assert_eq!(&pos_u, &whole.pos_u, "{} workers", workers);
        }
    }

    /// On a collected station, every engine path through the monolithic
    /// index — Eytzinger single queries, the batch sweep, the
    /// `partition_point` baseline — and the raw per-node scan release
    /// identical bits.
    #[test]
    fn rank_index_engine_paths_are_bit_identical(
        seed in 0u64..1_000,
        p in 0.05f64..1.0,
        sizes in proptest::collection::vec(0usize..40, 1..10),
        bounds in proptest::collection::vec(-20.0f64..120.0, 2..48),
    ) {
        let partitions: Vec<Vec<f64>> = sizes
            .iter()
            .enumerate()
            .map(|(i, &s)| (0..s).map(|j| ((i * 13 + j * 7) % 97) as f64).collect())
            .collect();
        let station = collected_station(partitions, seed, p);
        prop_assume!(station.total_population() > 0);
        let index = RankIndex::build(&station).expect("uniform station");
        let queries = queries_from(&bounds);

        let batch = index.estimate_batch(&queries);
        prop_assert_eq!(batch.estimates.len(), queries.len());
        for (i, &query) in queries.iter().enumerate() {
            let eytzinger = index.estimate(query);
            let baseline = index.estimate_baseline(query);
            let scanned = RankCounting.estimate(&station, query);
            prop_assert_eq!(
                eytzinger.to_bits(), baseline.to_bits(),
                "descent {} vs baseline {}", eytzinger, baseline
            );
            prop_assert_eq!(
                batch.estimates[i].to_bits(), baseline.to_bits(),
                "batch {} vs baseline {}", batch.estimates[i], baseline
            );
            prop_assert_eq!(eytzinger.to_bits(), scanned.to_bits());
        }
    }
}

/// Absorbs `rounds` incremental top-ups into a segmented index so its
/// layout spans multiple segments, checking every engine path against
/// the baseline after each round. Returns the segment count reached.
fn run_segmented_rounds(
    seed: u64,
    rounds: usize,
    queries: &[RangeQuery],
) -> Result<usize, TestCaseError> {
    let partitions: Vec<Vec<f64>> = (0..6)
        .map(|i| (0..30).map(|j| ((i * 30 + j) / 2) as f64).collect())
        .collect();
    let mut net = FlatNetwork::from_partitions(partitions, seed);
    let mut target = 0.2;
    net.collect_samples(target);
    let mut index = SegmentedRankIndex::build(net.station()).expect("uniform station");

    for round in 0..=rounds {
        if round > 0 {
            target = (target + 0.12).min(0.95);
            let delta = net.collect_delta(target);
            prop_assert!(
                index.absorb_delta(net.station(), &delta.changed).is_some(),
                "top-ups keep the station uniform"
            );
        }
        let fresh = RankIndex::build(net.station()).expect("uniform station");
        let batch = index.estimate_batch(queries);
        for (i, &query) in queries.iter().enumerate() {
            let baseline = index.estimate_baseline(query);
            prop_assert_eq!(index.estimate(query).to_bits(), baseline.to_bits());
            prop_assert_eq!(batch.estimates[i].to_bits(), baseline.to_bits());
            prop_assert_eq!(baseline.to_bits(), fresh.estimate(query).to_bits());
        }
    }
    Ok(index.segments())
}

proptest! {
    // Each case replays several collection rounds with a monolithic
    // rebuild per round; keep the case count moderate.
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// A segmented index carried through 0..=4 delta rounds (so 1..=5
    /// segments before compaction) answers every engine path — descent,
    /// batch sweep, baseline — bit-identically to a fresh monolithic
    /// rebuild after every round.
    #[test]
    fn segmented_engine_paths_survive_delta_rounds(
        seed in 0u64..1_000,
        rounds in 0usize..=4,
        bounds in proptest::collection::vec(-10.0f64..100.0, 2..24),
    ) {
        let queries = queries_from(&bounds);
        let segments = run_segmented_rounds(seed, rounds, &queries)?;
        prop_assert!(segments >= 1);
    }

    /// End to end across drivers: flat, threaded, and tree brokers
    /// forced onto the indexed batch path release identical bits — and
    /// identical bits to a scan-forced flat broker — while the engine
    /// and plan-cache counters confirm which path ran.
    #[test]
    fn drivers_release_identical_batch_bits(
        seed in 0u64..1_000,
        bounds in proptest::collection::vec(0.0f64..4_000.0, 2..10),
    ) {
        let partitions: Vec<Vec<f64>> = (0..6)
            .map(|i| (0..700).map(|j| (i * 700 + j) as f64).collect())
            .collect();
        let workload: Vec<QueryRequest> = bounds
            .chunks_exact(2)
            .map(|pair| {
                let (a, b) = (pair[0], pair[1]);
                QueryRequest::new(
                    RangeQuery::new(a.min(b), a.max(b)).unwrap(),
                    Accuracy::new(0.15, 0.5).unwrap(),
                )
            })
            .collect();

        let released_bits = |report: &BatchReport| -> Vec<u64> {
            report
                .answers
                .iter()
                .map(|a| a.as_ref().expect("batch member released").value.to_bits())
                .collect()
        };

        let mut broker =
            DataBroker::new(FlatNetwork::from_partitions(partitions.clone(), seed), seed);
        broker.set_index_threshold(0);
        let flat = broker.answer_batch(&workload);

        let mut broker = DataBroker::new(
            ThreadedNetwork::from_partitions(partitions.clone(), seed),
            seed,
        );
        broker.set_index_threshold(0);
        let threaded = broker.answer_batch(&workload);

        let mut broker =
            DataBroker::new(TreeNetwork::from_partitions(partitions.clone(), 2, seed), seed);
        broker.set_index_threshold(0);
        let tree = broker.answer_batch(&workload);

        let mut broker = DataBroker::new(FlatNetwork::from_partitions(partitions, seed), seed);
        broker.set_index_threshold(usize::MAX);
        let scanned = broker.answer_batch(&workload);

        let flat_bits = released_bits(&flat);
        prop_assert_eq!(&flat_bits, &released_bits(&threaded), "flat vs threaded");
        prop_assert_eq!(&flat_bits, &released_bits(&tree), "flat vs tree");
        prop_assert_eq!(&flat_bits, &released_bits(&scanned), "indexed vs scanned");

        // The indexed runs went through the engine; the scan run did not.
        prop_assert_eq!(flat.stats.engine_hits, workload.len() as u64);
        prop_assert_eq!(scanned.stats.engine_hits, 0);
        prop_assert_eq!(scanned.stats.gallop_steps, 0);
        // All members share one accuracy target and one rate tier, so
        // after the first grid sweep the remaining plans are memo hits
        // (exact count left open: an infeasibility retry re-sweeps).
        if workload.len() >= 2 {
            prop_assert!(
                flat.stats.plan_cache_hits >= 1,
                "no plan-cache hit across {} same-accuracy members",
                workload.len()
            );
        }
    }
}
