//! End-to-end integration: dataset → network → broker → consumer → pricing.

use prc::prelude::*;

fn standard_setup(seed: u64) -> (Dataset, FlatNetwork) {
    let dataset = CityPulseGenerator::new(seed).record_count(8_000).generate();
    let network = FlatNetwork::from_dataset(
        &dataset,
        AirQualityIndex::Ozone,
        40,
        PartitionStrategy::RoundRobin,
        seed,
    );
    (dataset, network)
}

#[test]
fn full_pipeline_produces_a_priced_private_answer() {
    let (dataset, network) = standard_setup(1);
    let truth = network.exact_range_count(80.0, 130.0) as f64;
    let mut broker = DataBroker::new(network, 1);

    let request = QueryRequest::new(
        RangeQuery::new(80.0, 130.0).unwrap(),
        Accuracy::new(0.06, 0.8).unwrap(),
    );
    let answer = broker.answer(&request).unwrap();

    // The answer is noisy but close to the truth.
    assert!((answer.value - truth).abs() < 0.2 * dataset.len() as f64);
    // The internal estimate differs from the released value (noise added).
    assert_ne!(answer.value, answer.sample_estimate);

    // Pricing closes the loop.
    let pricing = InverseVariancePricing::new(1e8, ChebyshevVariance::new(dataset.len()));
    let price = pricing.price(request.accuracy.alpha(), request.accuracy.delta());
    let mut ledger = TradeLedger::new();
    ledger.record(
        "customer-1",
        request.accuracy.alpha(),
        request.accuracy.delta(),
        price,
    );
    assert_eq!(ledger.len(), 1);
    assert!(ledger.total_revenue() > 0.0);
}

#[test]
fn definition_2_2_holds_empirically_for_the_full_pipeline() {
    // The released (noisy) answer must satisfy |answer − truth| ≤ αn with
    // probability ≥ δ. 200 independent pipelines, δ = 0.75.
    let accuracy = Accuracy::new(0.08, 0.75).unwrap();
    let query = RangeQuery::new(70.0, 140.0).unwrap();
    let mut hits = 0;
    let trials = 200;
    for seed in 0..trials {
        let (dataset, network) = standard_setup(seed);
        let truth = network.exact_range_count(70.0, 140.0) as f64;
        let n = dataset.len() as f64;
        let mut broker = DataBroker::new(network, seed * 31 + 5);
        let answer = broker.answer(&QueryRequest::new(query, accuracy)).unwrap();
        if (answer.value - truth).abs() <= accuracy.alpha() * n {
            hits += 1;
        }
    }
    let rate = hits as f64 / trials as f64;
    assert!(
        rate >= 0.75,
        "(α, δ) contract violated: empirical rate {rate} < 0.75"
    );
}

#[test]
fn pipeline_is_deterministic_for_a_fixed_seed() {
    let run = || {
        let (_, network) = standard_setup(9);
        let mut broker = DataBroker::new(network, 9);
        let request = QueryRequest::new(
            RangeQuery::new(90.0, 120.0).unwrap(),
            Accuracy::new(0.1, 0.6).unwrap(),
        );
        broker.answer(&request).unwrap().value
    };
    assert_eq!(run(), run());
}

#[test]
fn broker_answers_many_queries_from_one_sample() {
    // The one-sample/many-queries design: after the first answer, later
    // queries with the same accuracy must not trigger new sampling.
    let (_, network) = standard_setup(3);
    let mut broker = DataBroker::new(network, 3);
    let accuracy = Accuracy::new(0.1, 0.6).unwrap();
    broker
        .answer(&QueryRequest::new(
            RangeQuery::new(80.0, 120.0).unwrap(),
            accuracy,
        ))
        .unwrap();
    let samples_after_first = broker.network().station().total_samples();
    for (l, u) in [(60.0, 90.0), (100.0, 150.0), (0.0, 200.0), (95.0, 96.0)] {
        broker
            .answer(&QueryRequest::new(RangeQuery::new(l, u).unwrap(), accuracy))
            .unwrap();
    }
    assert_eq!(
        broker.network().station().total_samples(),
        samples_after_first,
        "same-accuracy queries must reuse the existing sample"
    );
}

#[test]
fn consumer_bundle_averages_broker_answers() {
    let (_, network) = standard_setup(5);
    let mut broker = DataBroker::new(network, 5);
    let request = QueryRequest::new(
        RangeQuery::new(85.0, 125.0).unwrap(),
        Accuracy::new(0.15, 0.5).unwrap(),
    );
    let bundle: AnswerBundle = (0..6).map(|_| broker.answer(&request).unwrap()).collect();
    assert_eq!(bundle.len(), 6);
    let combined = bundle.combined_value().unwrap();
    let single = bundle.answers()[0].value;
    assert!(combined.is_finite());
    // Averaging shrinks the certified variance bound.
    assert!(
        bundle.combined_variance_bound().unwrap() < bundle.answers()[0].variance_bound,
        "bundle variance must beat a single answer"
    );
    let _ = single;
}

#[test]
fn tighter_accuracy_costs_more_network_and_more_money() {
    let pricing = InverseVariancePricing::new(1e8, ChebyshevVariance::new(8_000));

    let run = |alpha: f64, delta: f64| {
        let (_, network) = standard_setup(7);
        let mut broker = DataBroker::new(network, 7);
        let request = QueryRequest::new(
            RangeQuery::new(80.0, 120.0).unwrap(),
            Accuracy::new(alpha, delta).unwrap(),
        );
        broker.answer(&request).unwrap();
        let cost = broker.network().meter().snapshot();
        (cost.samples, pricing.price(alpha, delta))
    };
    let (loose_samples, loose_price) = run(0.2, 0.5);
    let (strict_samples, strict_price) = run(0.03, 0.9);
    assert!(strict_samples > loose_samples);
    assert!(strict_price > loose_price);
}

#[test]
fn dp_noise_distribution_matches_the_plan() {
    // Collect many answers with a fixed plan and verify the noise spread
    // matches the Laplace scale the plan promises.
    let (_, network) = standard_setup(11);
    let mut broker = DataBroker::new(network, 11);
    let query = RangeQuery::new(80.0, 120.0).unwrap();
    let epsilon = Epsilon::new(0.5).unwrap();
    let mut noises = Vec::new();
    let mut scale = 0.0;
    for _ in 0..4_000 {
        let a = broker.answer_with_epsilon(query, epsilon, 0.3).unwrap();
        noises.push(a.value - a.sample_estimate);
        scale = a.plan.noise_scale;
    }
    let mean = noises.iter().sum::<f64>() / noises.len() as f64;
    let var = noises.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / noises.len() as f64;
    let theory = 2.0 * scale * scale;
    assert!(mean.abs() < scale * 0.2, "noise mean {mean}");
    assert!(
        (var - theory).abs() / theory < 0.15,
        "noise variance {var} vs theory {theory}"
    );
}
