//! The `Network` conformance kit, instantiated for every driver in the
//! workspace.
//!
//! `prc_net::conformance::check_driver` runs the full executable
//! contract (DESIGN.md §12) against one driver: seed determinism,
//! monotone top-up, cost-meter invariants, failure-plan semantics, and
//! tracer accounting. `assert_drivers_agree` then pins the cross-driver
//! half: flat, threaded, and tree must produce **byte-identical** base
//! station state for identical seeds — including under one shared
//! `FailurePlan`.

use prc::net::conformance::{
    assert_drivers_agree, canonical_failure_plan, canonical_partitions, check_driver,
    station_fingerprint, ConformanceReport, CANONICAL_SEED,
};
use prc::prelude::*;

fn flat_report() -> ConformanceReport {
    check_driver("flat", |parts, seed| {
        FlatNetwork::from_partitions(parts, seed)
    })
}

fn threaded_report() -> ConformanceReport {
    check_driver("threaded", |parts, seed| {
        ThreadedNetwork::from_partitions(parts, seed)
    })
}

fn tree_report() -> ConformanceReport {
    check_driver("tree", |parts, seed| {
        TreeNetwork::from_partitions(parts, 2, seed)
    })
}

#[test]
fn flat_network_passes_the_contract() {
    let report = flat_report();
    assert!(report.clean_station.total_samples() > 0);
}

#[test]
fn threaded_network_passes_the_contract() {
    let report = threaded_report();
    assert!(report.clean_station.total_samples() > 0);
}

#[test]
fn tree_network_passes_the_contract() {
    let report = tree_report();
    assert!(report.clean_station.total_samples() > 0);
}

#[test]
fn all_drivers_agree_byte_for_byte() {
    assert_drivers_agree(&[flat_report(), threaded_report(), tree_report()]);
}

#[test]
fn tree_costs_exceed_flat_for_the_same_state() {
    // Same samples, same bytes-on-the-wire per link — but the tree pays
    // per hop, so its totals must strictly dominate.
    let flat = flat_report();
    let tree = tree_report();
    assert_eq!(
        station_fingerprint(&flat.clean_station),
        station_fingerprint(&tree.clean_station)
    );
    assert!(tree.clean_cost.messages > flat.clean_cost.messages);
    assert!(tree.clean_cost.bytes > flat.clean_cost.bytes);
}

#[test]
fn shared_failure_plan_is_driver_independent() {
    // The same plan seed driven through differently-scheduled drivers
    // must kill the same nodes and lose the same batches. This is the
    // regression test for the old parity gap where the threaded driver
    // silently ignored FailurePlan.
    let mut flat = FlatNetwork::from_partitions(canonical_partitions(), CANONICAL_SEED);
    let mut threaded = ThreadedNetwork::from_partitions(canonical_partitions(), CANONICAL_SEED);
    let mut tree = TreeNetwork::from_partitions(canonical_partitions(), 2, CANONICAL_SEED);
    flat.set_failure_plan(canonical_failure_plan());
    threaded.set_failure_plan(canonical_failure_plan());
    tree.set_failure_plan(canonical_failure_plan());
    for target in [0.3, 0.7] {
        let a = flat.collect_samples(target);
        let b = threaded.collect_samples(target);
        let c = tree.collect_samples(target);
        assert_eq!(a, b, "flat and threaded deliveries diverged at {target}");
        assert_eq!(a, c, "flat and tree deliveries diverged at {target}");
    }
    assert_eq!(
        station_fingerprint(flat.station()),
        station_fingerprint(threaded.station())
    );
    assert_eq!(
        station_fingerprint(flat.station()),
        station_fingerprint(tree.station())
    );
    assert_eq!(
        flat.meter().snapshot().lost_messages,
        tree.meter().snapshot().lost_messages,
        "per-node loss streams must make every driver lose the same batches"
    );
}
