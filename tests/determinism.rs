//! Cross-driver determinism: `FlatNetwork` and `ThreadedNetwork` run the
//! same collection protocol, so for the same seed and partitions they
//! must produce **byte-identical** sample sets — same nodes, same entry
//! order, same `f64` bit patterns, same ranks — no matter how the
//! threaded driver's OS threads are scheduled. The broker's batched
//! pipeline inherits that guarantee: identical seeds release identical
//! answers on either driver.

use prc::prelude::*;

fn partitions(nodes: usize, per_node: usize) -> Vec<Vec<f64>> {
    (0..nodes)
        .map(|i| {
            (0..per_node)
                .map(|j| ((i + nodes * j) as f64) * 0.5 - 3.0)
                .collect()
        })
        .collect()
}

/// Serializes the station's full sample state into a canonical byte
/// string: node id, population, cumulative probability bits, then every
/// entry's value bits and rank, in station iteration order.
fn sample_bytes<N: Network>(network: &N) -> Vec<u8> {
    let mut bytes = Vec::new();
    for node in network.station().node_samples() {
        for entry in node.entries() {
            bytes.extend_from_slice(&entry.value.to_bits().to_le_bytes());
            bytes.extend_from_slice(&entry.rank.to_le_bytes());
        }
    }
    bytes
}

/// Drives any `Network` through the same escalating collection schedule.
fn drive<N: Network>(network: &mut N, targets: &[f64]) -> usize {
    targets.iter().map(|&t| network.collect_samples(t)).sum()
}

#[test]
fn flat_and_threaded_sample_sets_are_byte_identical() {
    let schedule = [0.1, 0.25, 0.25, 0.6, 0.95];
    for seed in [0u64, 1, 42, 0xdead_beef] {
        for (nodes, per_node) in [(1, 500), (4, 250), (9, 111)] {
            let parts = partitions(nodes, per_node);

            let mut flat = FlatNetwork::from_partitions(parts.clone(), seed);
            let flat_delivered = drive(&mut flat, &schedule);

            let mut threaded = ThreadedNetwork::from_partitions(parts, seed);
            let threaded_delivered = drive(&mut threaded, &schedule);

            assert_eq!(
                flat_delivered, threaded_delivered,
                "delivery counts diverged (seed {seed}, {nodes} nodes)"
            );
            assert_eq!(
                sample_bytes(&flat),
                sample_bytes(&threaded),
                "sample bytes diverged (seed {seed}, {nodes} nodes)"
            );
            assert_eq!(
                flat.station(),
                threaded.station(),
                "station state diverged (seed {seed}, {nodes} nodes)"
            );
        }
    }
}

#[test]
fn different_seeds_produce_different_sample_sets() {
    let parts = partitions(4, 250);
    let mut a = FlatNetwork::from_partitions(parts.clone(), 7);
    let mut b = FlatNetwork::from_partitions(parts, 8);
    drive(&mut a, &[0.5]);
    drive(&mut b, &[0.5]);
    assert_ne!(
        sample_bytes(&a),
        sample_bytes(&b),
        "distinct seeds should not collide on full sample state"
    );
}

#[test]
fn batched_broker_releases_identical_answers_on_either_driver() {
    let parts = partitions(6, 200);
    let requests: Vec<QueryRequest> = [(10.0, 300.0, 0.1, 0.6), (50.0, 400.0, 0.15, 0.7)]
        .iter()
        .map(|&(lo, hi, a, d)| {
            QueryRequest::new(
                RangeQuery::new(lo, hi).unwrap(),
                Accuracy::new(a, d).unwrap(),
            )
        })
        .collect();

    let mut flat = DataBroker::new(FlatNetwork::from_partitions(parts.clone(), 99), 99);
    let mut threaded = DataBroker::new(ThreadedNetwork::from_partitions(parts, 99), 99);
    let flat_report = flat.answer_batch(&requests);
    let threaded_report = threaded.answer_batch(&requests);

    for (f, t) in flat_report.answers.iter().zip(&threaded_report.answers) {
        let (f, t) = (f.as_ref().unwrap(), t.as_ref().unwrap());
        assert_eq!(f.value.to_bits(), t.value.to_bits());
        assert_eq!(f.plan, t.plan);
    }
}
