//! Property-based tests for the segmented incremental index.
//!
//! The [`SegmentedRankIndex`] contract extends the monolithic one: after
//! *any* interleaving of collection rounds — partial revivals at a
//! constant target, global top-ups to a higher target, and the
//! compactions they trigger — the index fed only the per-round deltas
//! must release exactly the bits of a monolithic [`RankIndex`] rebuilt
//! from scratch on the current station, and of the raw per-node scan.
//! The sweep drives random schedules over all three network drivers and
//! additionally pins the three drivers to each other bit-for-bit.
//!
//! Only *leaf* nodes of the aggregation tree are ever killed, so the
//! tree driver's delivered sample set equals the flat driver's (a dead
//! interior node would also cut off its descendants).

use proptest::prelude::*;
use proptest::test_runner::TestCaseError;

use prc::net::base_station::BaseStation;
use prc::net::message::NodeId;
use prc::prelude::*;

/// Nodes per network; with branching 2 the tree's leaves are the upper
/// half of the id space.
const NODES: usize = 8;
const LEAF_START: u32 = 4;
const LEAF_COUNT: usize = 4;
const PER_NODE: usize = 24;
const TREE_BRANCHING: usize = 2;

/// One randomized schedule step.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// Revive up to `k` still-dead leaves and collect at the current
    /// target (revival catch-up: only the revived leaves change).
    Revive(usize),
    /// Raise the global target and collect (a full delta over every
    /// alive node — the mass-tombstone path compaction reclaims).
    TopUp,
}

fn partitions() -> Vec<Vec<f64>> {
    (0..NODES)
        .map(|i| {
            (0..PER_NODE)
                // Halved so duplicate values are common across nodes.
                .map(|j| ((i * PER_NODE + j) / 2) as f64)
                .collect()
        })
        .collect()
}

/// Kills the still-dead leaf suffix `[revived ..]`.
fn plan_for(revived: usize) -> FailurePlan {
    let mut plan = FailurePlan::none();
    for leaf in (LEAF_START + revived as u32)..(LEAF_START + LEAF_COUNT as u32) {
        plan.kill_node(NodeId(leaf));
    }
    plan
}

/// The per-step probe workload: spread, point, and out-of-support
/// ranges, varied by step so every round is checked on fresh cuts.
fn probes(step: usize) -> Vec<RangeQuery> {
    let n = (NODES * PER_NODE / 2) as f64;
    let pivot = n * (((step * 7) % 10) as f64) / 10.0;
    vec![
        RangeQuery::new(pivot, pivot).expect("valid probe"),
        RangeQuery::new(pivot * 0.5, pivot * 0.5 + n * 0.3).expect("valid probe"),
        RangeQuery::new(-10.0, -1.0).expect("valid probe"),
        RangeQuery::new(0.0, n + 10.0).expect("valid probe"),
    ]
}

/// Runs one schedule on one driver, absorbing each round's delta and
/// checking the segmented index against a fresh monolithic rebuild and
/// the scan after every step. Returns the segmented bits released.
fn run_driver<N: Network>(mut net: N, ops: &[Op], p0: f64) -> Result<Vec<u64>, TestCaseError> {
    let mut target = p0;
    let mut revived = 0usize;
    let mut index: Option<SegmentedRankIndex> = None;
    let mut bits = Vec::new();

    // Epoch 0: every leaf dead, first collection, initial build.
    net.set_failure_plan(plan_for(0));
    let delta = net.collect_delta(target);
    prop_assert_eq!(delta.changed.len(), NODES - LEAF_COUNT);
    absorb_or_build(&mut index, net.station(), &delta.changed)?;
    check_step(
        index.as_ref().expect("built at epoch 0"),
        net.station(),
        0,
        &mut bits,
    )?;

    for (step, &op) in ops.iter().enumerate() {
        match op {
            Op::Revive(k) => {
                revived = (revived + k.max(1)).min(LEAF_COUNT);
            }
            Op::TopUp => {
                // Bounded so the target stays a valid probability.
                target = (target + 0.17).min(0.95);
            }
        }
        net.set_failure_plan(plan_for(revived));
        let delta = net.collect_delta(target);
        absorb_or_build(&mut index, net.station(), &delta.changed)?;
        check_step(
            index.as_ref().expect("built at epoch 0"),
            net.station(),
            step + 1,
            &mut bits,
        )?;
    }

    let index = index.expect("built at epoch 0");
    // Compaction must keep the layout bounded no matter the schedule.
    prop_assert!(
        index.segments() <= 6,
        "compaction let segments grow to {}",
        index.segments()
    );
    Ok(bits)
}

fn absorb_or_build(
    index: &mut Option<SegmentedRankIndex>,
    station: &BaseStation,
    changed: &[NodeId],
) -> Result<(), TestCaseError> {
    match index {
        None => {
            *index = Some(SegmentedRankIndex::build(station).expect("uniform station"));
        }
        Some(idx) => {
            prop_assert!(
                idx.absorb_delta(station, changed).is_some(),
                "revivals and top-ups keep the station uniform"
            );
        }
    }
    Ok(())
}

/// Bit-identity after one step: segmented vs fresh monolithic rebuild vs
/// the per-node scan, on every probe.
fn check_step(
    index: &SegmentedRankIndex,
    station: &BaseStation,
    step: usize,
    bits: &mut Vec<u64>,
) -> Result<(), TestCaseError> {
    let fresh = RankIndex::build(station).expect("uniform station");
    for query in probes(step) {
        let segmented = index.estimate(query).to_bits();
        prop_assert_eq!(
            segmented,
            fresh.estimate(query).to_bits(),
            "segmented vs fresh monolithic rebuild at step {}",
            step
        );
        prop_assert_eq!(
            segmented,
            RankCounting.estimate(station, query).to_bits(),
            "segmented vs scan at step {}",
            step
        );
        bits.push(segmented);
    }
    Ok(())
}

proptest! {
    // Each case replays the schedule on three drivers with a rebuild
    // per step; keep the case count moderate.
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Any interleaving of revivals, top-ups, and the compactions they
    /// trigger leaves the delta-fed segmented index bit-identical to a
    /// fresh monolithic rebuild on every driver — and the three drivers
    /// bit-identical to each other.
    #[test]
    fn delta_fed_index_matches_fresh_rebuild_under_any_schedule(
        seed in 0u64..1_000,
        p0 in 0.15f64..0.4,
        raw_ops in proptest::collection::vec(0usize..4, 1..8),
    ) {
        let ops: Vec<Op> = raw_ops
            .iter()
            .map(|&r| if r == 0 { Op::TopUp } else { Op::Revive(r) })
            .collect();
        let flat = run_driver(
            FlatNetwork::from_partitions(partitions(), seed), &ops, p0,
        )?;
        let threaded = run_driver(
            ThreadedNetwork::from_partitions(partitions(), seed), &ops, p0,
        )?;
        let tree = run_driver(
            TreeNetwork::from_partitions(partitions(), TREE_BRANCHING, seed), &ops, p0,
        )?;
        prop_assert_eq!(&flat, &threaded, "flat vs threaded released bits");
        prop_assert_eq!(&flat, &tree, "flat vs tree released bits");
    }
}
