//! Property-based tests for the `prc-runtime` executor contract.
//!
//! The pool's promise is *scheduling-independence*: for any worker count
//! (including 1) and any input size, `map_chunked` / `map_chunked_mut` /
//! `reduce_ordered` return results in submission order that are
//! bit-identical to a plain sequential evaluation — chunking may group
//! per-item work differently, but it must never change what any item
//! sees or where its result lands. A second, non-negotiable clause is
//! the single panic path: the first worker panic is captured with its
//! payload intact and re-raised on the caller after every sibling task
//! has finished, leaving the pool reusable.

use std::panic::{catch_unwind, AssertUnwindSafe};

use proptest::prelude::*;
use proptest::test_runner::TestCaseError;

use prc_runtime::{CutoffPolicy, Runtime};

/// Builds pools across the contract's whole worker-count range; the
/// 1-worker pool is the sequential reference every other count must
/// match bit-for-bit.
fn pools() -> Vec<Runtime> {
    (1..=8)
        .map(|n| Runtime::builder().workers(n).build())
        .collect()
}

/// Adversarial cutoffs: always-parallel, knife-edge around the input
/// size, and far beyond it (forcing the sequential fallback).
fn cutoffs(len: usize) -> Vec<CutoffPolicy> {
    vec![
        CutoffPolicy::always_parallel(),
        CutoffPolicy::min_work(1),
        CutoffPolicy::min_work(len / 2 + 1),
        CutoffPolicy::min_work(len),
        CutoffPolicy::min_work(len + 1),
        CutoffPolicy::min_work(1 << 15),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Flattened per-item results from `map_chunked` are bit-identical
    /// to the sequential map for every worker count and cutoff, and each
    /// chunk sees exactly the slice its offset claims.
    #[test]
    fn map_chunked_is_bit_identical_to_sequential(
        data in proptest::collection::vec(-1.0e6f64..1.0e6, 0..150),
    ) {
        let expected: Vec<u64> =
            data.iter().map(|v| (v * 1.5 + 0.25).to_bits()).collect();
        for pool in pools() {
            for cutoff in cutoffs(data.len()) {
                let got: Vec<u64> = pool
                    .map_chunked(&data, data.len(), cutoff, |chunk| {
                        for (j, item) in chunk.items.iter().enumerate() {
                            // The chunk's offset names its global window.
                            prop_assert!(
                                item.to_bits() == data[chunk.offset + j].to_bits(),
                                "chunk {} misaligned at offset {}",
                                chunk.index,
                                chunk.offset
                            );
                        }
                        Ok(chunk
                            .items
                            .iter()
                            .map(|v| (v * 1.5 + 0.25).to_bits())
                            .collect::<Vec<u64>>())
                    })
                    .into_iter()
                    .collect::<Result<Vec<_>, TestCaseError>>()?
                    .into_iter()
                    .flatten()
                    .collect();
                prop_assert_eq!(&got, &expected, "workers {}", pool.worker_count());
            }
        }
    }

    /// `map_chunked_mut` visits every element exactly once, in place,
    /// with the same global positions as a sequential pass.
    #[test]
    fn map_chunked_mut_covers_every_element_once(
        len in 0usize..150,
        workers in 1usize..=8,
        min_work in 0usize..200,
    ) {
        let pool = Runtime::builder().workers(workers).build();
        let mut data: Vec<u64> = (0..len as u64).collect();
        let touched: Vec<usize> = pool.map_chunked_mut(
            &mut data,
            len,
            CutoffPolicy::min_work(min_work),
            |chunk| {
                for (j, item) in chunk.items.iter_mut().enumerate() {
                    *item += ((chunk.offset + j) as u64) << 32;
                }
                chunk.items.len()
            },
        );
        prop_assert_eq!(touched.iter().sum::<usize>(), len);
        let expected: Vec<u64> = (0..len as u64).map(|i| i + (i << 32)).collect();
        prop_assert_eq!(data, expected);
    }

    /// `reduce_ordered` folds partials in submission order: an exact
    /// integer sum matches the sequential total for every worker count,
    /// and an order-sensitive fold (concatenation) proves the partials
    /// arrive exactly in chunk order.
    #[test]
    fn reduce_ordered_folds_in_submission_order(
        data in proptest::collection::vec(-1_000i64..1_000, 0..150),
        min_work in 0usize..200,
    ) {
        let cutoff = CutoffPolicy::min_work(min_work);
        let expected_sum: i64 = data.iter().sum();
        let expected_cat: Vec<i64> = data.clone();
        for pool in pools() {
            let sum = pool.reduce_ordered(
                &data,
                data.len(),
                cutoff,
                |chunk| chunk.items.iter().sum::<i64>(),
                0i64,
                |acc, part| acc + part,
            );
            prop_assert_eq!(sum, expected_sum, "workers {}", pool.worker_count());
            let cat = pool.reduce_ordered(
                &data,
                data.len(),
                cutoff,
                |chunk| chunk.items.to_vec(),
                Vec::new(),
                |mut acc: Vec<i64>, mut part| {
                    acc.append(&mut part);
                    acc
                },
            );
            prop_assert_eq!(&cat, &expected_cat, "workers {}", pool.worker_count());
        }
    }
}

/// The single panic path: the first worker panic's payload crosses the
/// pool intact, siblings all finish first, and the pool stays usable —
/// no leaked or wedged workers.
#[test]
fn worker_panic_payload_is_preserved_and_pool_survives() {
    let pool = Runtime::builder().workers(4).build();
    let data: Vec<u32> = (0..64).collect();
    let before = pool.counters().worker_panics;
    let caught = catch_unwind(AssertUnwindSafe(|| {
        pool.map_chunked(
            &data,
            data.len(),
            CutoffPolicy::always_parallel(),
            |chunk| {
                if chunk.items.contains(&13) {
                    std::panic::panic_any(format!("poisoned chunk {}", chunk.index));
                }
                chunk.items.len()
            },
        )
    }))
    .expect_err("a panicking chunk must re-raise on the caller");
    let message = caught
        .downcast_ref::<String>()
        .expect("payload type must be preserved through the pool");
    assert!(
        message.starts_with("poisoned chunk "),
        "payload contents must be preserved, got {message:?}"
    );
    assert!(
        pool.counters().worker_panics > before,
        "worker panics must be counted"
    );
    // The pool is still live: the same workers answer the next batch.
    let sum: usize = pool
        .map_chunked(
            &data,
            data.len(),
            CutoffPolicy::always_parallel(),
            |chunk| chunk.items.len(),
        )
        .into_iter()
        .sum();
    assert_eq!(sum, data.len());
}

/// `PRC_THREADS` would be racy to mutate inside one test process; the
/// builder override is the same code path, so pin its clamping here.
#[test]
fn builder_override_pins_worker_count() {
    for n in [1usize, 2, 7] {
        let pool = Runtime::builder().workers(n).build();
        assert_eq!(pool.worker_count(), n);
        assert_eq!(pool.lanes_for(3), n.min(3));
    }
    assert_eq!(Runtime::builder().workers(0).build().worker_count(), 1);
    assert!(Runtime::global().worker_count() >= 1);
}
