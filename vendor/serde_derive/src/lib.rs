//! No-op `Serialize`/`Deserialize` derives for the vendored serde
//! stand-in: they accept the same attribute grammar (including `#[serde]`
//! helper attributes) and expand to nothing, which is sufficient because
//! the workspace never bounds on the serde traits.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` and expands to nothing.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` and expands to nothing.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
