//! The `any::<T>()` strategy for types with a canonical full-range
//! distribution.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::marker::PhantomData;

/// Types with a canonical "any value" distribution.
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64()
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Arbitrary for u16 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        (rng.next_u64() >> 48) as u16
    }
}

impl Arbitrary for u8 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Arbitrary for i64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() as i64
    }
}

impl Arbitrary for i32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        (rng.next_u64() >> 32) as u32 as i32
    }
}

impl Arbitrary for usize {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() as usize
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

/// A strategy producing arbitrary values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}
