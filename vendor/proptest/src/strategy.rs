//! Value-generation strategies.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// Something that can generate values of a given type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

/// A strategy that always yields a clone of the same value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (start as i128 + offset as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
    )*};
}

float_range_strategy!(f32, f64);
