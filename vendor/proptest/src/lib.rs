//! Offline stand-in for `proptest`.
//!
//! Implements the subset the workspace's property tests use:
//!
//! * the [`proptest!`] macro with `#![proptest_config(...)]`, multiple
//!   `#[test] fn name(binding in strategy, ...)` items, and `mut`
//!   bindings;
//! * range strategies for floats and integers, [`arbitrary::any`], and
//!   [`collection::vec`];
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assert_ne!`], and
//!   [`prop_assume!`];
//! * [`test_runner::ProptestConfig::with_cases`].
//!
//! Differences from upstream, by design:
//!
//! * **Deterministic seeding.** Every test's RNG is seeded from a stable
//!   hash of its module path and name (override with the
//!   `PROPTEST_SEED` environment variable), so failures reproduce
//!   exactly across runs and machines — the workspace's testing strategy
//!   requires seeded generators everywhere.
//! * **No shrinking.** A failing case reports its case number and seed
//!   instead of a minimized input.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod strategy;

pub mod arbitrary;

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates vectors whose elements come from `element` and whose
    /// length is uniform in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "vec size range must be non-empty");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len =
                self.size.start + (rng.next_u64() as usize) % (self.size.end - self.size.start);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Test execution support: configuration, RNG, and case errors.
pub mod test_runner {
    /// Per-test configuration.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of cases to run.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Why a single generated case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// An assumption (`prop_assume!`) filtered the case out.
        Reject(String),
        /// An assertion (`prop_assert!` family) failed.
        Fail(String),
    }

    /// The deterministic per-test generator (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl TestRng {
        /// Seeds from a stable FNV-1a hash of `test_path`, XORed with the
        /// `PROPTEST_SEED` environment variable when set.
        pub fn deterministic(test_path: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_path.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            if let Ok(v) = std::env::var("PROPTEST_SEED") {
                if let Ok(extra) = v.parse::<u64>() {
                    h ^= extra;
                }
            }
            let mut sm = h;
            TestRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }

        /// The next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        /// A uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

/// Everything a property-test module needs.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case unless both sides compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `left == right` (left: `{:?}`, right: `{:?}`)",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)+);
    }};
}

/// Fails the current case if both sides compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `left != right` (both: `{:?}`)",
            l
        );
    }};
}

/// Skips the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

/// Declares property tests. See the crate docs for the supported grammar.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]: munches one `fn` at a time.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $($params:tt)* ) $body:block
      $($rest:tt)*
    ) => {
        $crate::__proptest_args! { ($cfg) [$(#[$meta])*] $name [] ( $($params)* ) $body }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]: munches the parameter list.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_args {
    // Terminal: all parameters consumed — emit the test function.
    ( ($cfg:expr) [$(#[$meta:meta])*] $name:ident
      [ $( ( ($($pat:tt)+) ($strat:expr) ) )* ] ( ) $body:block
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::deterministic(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for case in 0..config.cases {
                $(
                    let $($pat)+ = $crate::strategy::Strategy::generate(&($strat), &mut rng);
                )*
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                match outcome {
                    ::std::result::Result::Ok(()) => {}
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest {} failed at case {}/{}: {}",
                            stringify!($name),
                            case + 1,
                            config.cases,
                            msg
                        );
                    }
                }
            }
        }
    };
    // `mut name in strategy, …`
    ( ($cfg:expr) [$(#[$meta:meta])*] $name:ident [ $($acc:tt)* ]
      ( mut $p:ident in $s:expr, $($rest:tt)* ) $body:block
    ) => {
        $crate::__proptest_args! { ($cfg) [$(#[$meta])*] $name
            [ $($acc)* ( (mut $p) ($s) ) ] ( $($rest)* ) $body }
    };
    // `mut name in strategy` (last parameter)
    ( ($cfg:expr) [$(#[$meta:meta])*] $name:ident [ $($acc:tt)* ]
      ( mut $p:ident in $s:expr ) $body:block
    ) => {
        $crate::__proptest_args! { ($cfg) [$(#[$meta])*] $name
            [ $($acc)* ( (mut $p) ($s) ) ] ( ) $body }
    };
    // `name in strategy, …`
    ( ($cfg:expr) [$(#[$meta:meta])*] $name:ident [ $($acc:tt)* ]
      ( $p:ident in $s:expr, $($rest:tt)* ) $body:block
    ) => {
        $crate::__proptest_args! { ($cfg) [$(#[$meta])*] $name
            [ $($acc)* ( ($p) ($s) ) ] ( $($rest)* ) $body }
    };
    // `name in strategy` (last parameter)
    ( ($cfg:expr) [$(#[$meta:meta])*] $name:ident [ $($acc:tt)* ]
      ( $p:ident in $s:expr ) $body:block
    ) => {
        $crate::__proptest_args! { ($cfg) [$(#[$meta])*] $name
            [ $($acc)* ( ($p) ($s) ) ] ( ) $body }
    };
}
