//! Offline stand-in for `serde`.
//!
//! The workspace only uses serde in `#[derive(serde::Serialize,
//! serde::Deserialize)]` position as forward-looking markup — no code
//! path serializes through the traits yet (figure binaries emit CSV and
//! JSON by hand). This vendored crate therefore ships marker traits and
//! no-op derive macros so the annotations compile without crates.io
//! access. If real serialization lands later, this crate is the single
//! place to grow (or to swap back for upstream serde).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Marker for types that declare themselves serializable.
pub trait Serialize {}

/// Marker for types that declare themselves deserializable.
pub trait Deserialize<'de> {}
