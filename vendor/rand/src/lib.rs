//! Offline stand-in for the `rand` crate.
//!
//! This workspace builds in environments without crates.io access, so the
//! external `rand` dependency is replaced by this vendored implementation
//! of exactly the API subset the workspace uses:
//!
//! * [`Rng`] — the core source trait (`next_u64`);
//! * [`RngExt`] — the convenience extension (`random`, `random_range`,
//!   `random_bool`), blanket-implemented for every [`Rng`];
//! * [`SeedableRng`] with `seed_from_u64`;
//! * [`rngs::StdRng`] — a deterministic xoshiro256++ generator.
//!
//! The streams produced here are **deterministic per seed** (the property
//! every test in the workspace relies on) but are not bit-compatible with
//! the upstream crate of the same name.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// A source of random bits.
pub trait Rng {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits (upper half of [`Rng::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Convenience sampling methods, blanket-implemented for every [`Rng`].
pub trait RngExt: Rng {
    /// A uniformly random value of type `T`.
    fn random<T: Random>(&mut self) -> T {
        T::random(self)
    }

    /// A uniformly random value inside `range`.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// Types that can be sampled uniformly from an [`Rng`].
pub trait Random: Sized {
    /// Draws one uniform value.
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Random for f64 {
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Random for f32 {
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Random for u64 {
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Random for u32 {
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Random for usize {
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Random for bool {
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that [`RngExt::random_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one uniform value from the range.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (start as i128 + offset as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let unit: $t = Random::random(rng);
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++,
    /// seeded through SplitMix64.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn unit_floats_are_in_range_and_cover() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        assert!((sum / 10_000.0 - 0.5).abs() < 0.02);
    }

    #[test]
    fn integer_ranges_hit_every_value() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            seen[rng.random_range(0..10usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn float_ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1_000 {
            let x: f64 = rng.random_range(-5.0..5.0);
            assert!((-5.0..5.0).contains(&x));
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(4);
        let _ = rng.random_range(5..5u32);
    }
}
