//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` locks behind parking_lot's panic-free API: `lock()`
//! returns the guard directly, and a poisoned std lock (a holder
//! panicked) is transparently recovered, matching parking_lot's
//! no-poisoning semantics.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::TryLockError;

/// A mutex guard; dereferences to the protected value.
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;
/// A shared read guard.
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// An exclusive write guard.
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

/// A mutual-exclusion lock without poisoning.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex and returns the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires the lock if it is free.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(guard) => Some(guard),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A readers-writer lock without poisoning.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock and returns the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;
    use std::sync::Arc;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn lock_recovers_from_a_panicked_holder() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("die while holding the lock");
        })
        .join();
        // parking_lot semantics: no poisoning, the lock stays usable.
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
