//! Offline stand-in for `criterion`.
//!
//! Implements the subset the workspace's benches use — `Criterion`,
//! benchmark groups, `bench_function` / `bench_with_input`,
//! `BenchmarkId`, `Bencher::iter`, and the `criterion_group!` /
//! `criterion_main!` macros — with a simple warm-up-then-measure timing
//! loop instead of upstream's statistical machinery. Each benchmark
//! prints its mean iteration time; use the `bench_batch` binary (which
//! reports throughput JSON) for load-bearing numbers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Runs closures under a timing loop.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    mean: Duration,
}

impl Bencher {
    /// Times `routine`, recording the mean wall-clock time per call.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up.
        for _ in 0..3 {
            black_box(routine());
        }
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.mean = start.elapsed() / u32::try_from(self.iters.max(1)).unwrap_or(u32::MAX);
    }
}

/// Identifier of one parameterized benchmark case.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// An id combining a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name)
    }
}

/// The benchmark harness entry point.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

fn run_one(label: &str, iters: u64, f: impl FnOnce(&mut Bencher)) {
    let mut bencher = Bencher {
        iters,
        mean: Duration::ZERO,
    };
    f(&mut bencher);
    println!(
        "bench {label:<40} {:>12.1} ns/iter",
        bencher.mean.as_nanos() as f64
    );
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 20,
            _criterion: self,
        }
    }

    /// Benchmarks one closure.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, 20, |b| f(b));
        self
    }
}

/// A group of related benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: u64,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, size: usize) -> &mut Self {
        self.sample_size = size as u64;
        self
    }

    /// Benchmarks one closure under this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), self.sample_size, |b| f(b));
        self
    }

    /// Benchmarks one closure with an explicit input value.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), self.sample_size, |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
