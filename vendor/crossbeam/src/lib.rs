//! Offline stand-in for `crossbeam`.
//!
//! Provides the subset the workspace uses — unbounded MPSC channels and
//! scoped threads — on top of `std::sync::mpsc` (lock-free since Rust
//! 1.72, when std adopted the crossbeam-channel implementation) and
//! `std::thread::scope`. Semantics relevant to the workspace (FIFO per
//! sender, disconnect on drop, scoped join-on-exit) match upstream.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Multi-producer channels.
pub mod channel {
    use std::sync::mpsc;

    /// Error returned by [`Sender::send`] when the receiver is gone; the
    /// unsent value is returned to the caller.
    #[derive(PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    /// Error returned by [`Receiver::recv`] when every sender is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// Every sender has disconnected.
        Disconnected,
    }

    /// The sending half of an unbounded channel.
    pub struct Sender<T>(mpsc::Sender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> std::fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> Sender<T> {
        /// Enqueues `value`, failing only when the receiver is dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0
                .send(value)
                .map_err(|mpsc::SendError(v)| SendError(v))
        }
    }

    /// The receiving half of an unbounded channel.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> std::fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a value arrives or every sender disconnects.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv().map_err(|_| RecvError)
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }

        /// Iterates over received values until every sender disconnects.
        pub fn iter(&self) -> impl Iterator<Item = T> + '_ {
            self.0.iter()
        }
    }

    /// Creates an unbounded FIFO channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(rx))
    }
}

/// Scoped threads.
pub mod thread {
    /// Result of a scope: upstream crossbeam reports child panics as an
    /// `Err`; `std::thread::scope` propagates them instead, so this
    /// wrapper only ever returns `Ok` (a panicking child aborts the scope
    /// by re-panicking, which is strictly stricter).
    pub type Result<T> = std::result::Result<T, Box<dyn std::any::Any + Send + 'static>>;

    /// Runs `f` with a scope in which borrowed-data threads can be
    /// spawned; every spawned thread is joined before `scope` returns.
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&'scope std::thread::Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(f))
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{unbounded, RecvError};

    #[test]
    fn channel_round_trip_fifo_per_sender() {
        let (tx, rx) = unbounded();
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        for i in 0..10 {
            assert_eq!(rx.recv(), Ok(i));
        }
    }

    #[test]
    fn recv_fails_after_all_senders_drop() {
        let (tx, rx) = unbounded::<u32>();
        let tx2 = tx.clone();
        drop(tx);
        tx2.send(5).unwrap();
        drop(tx2);
        assert_eq!(rx.recv(), Ok(5));
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn scope_joins_and_returns() {
        let data = [1, 2, 3];
        let total = super::thread::scope(|s| {
            let h = s.spawn(|| data.iter().sum::<i32>());
            h.join().unwrap()
        })
        .unwrap();
        assert_eq!(total, 6);
    }
}
